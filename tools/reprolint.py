"""reprolint: AST lint pass enforcing this repo's invariants.

    python -m tools.reprolint src/

Rules (each exists because breaking it silently invalidates either the
numerics or the performance model):

R001 no-hot-loop-alloc
    No NumPy array allocation inside a loop in a kernel function (named
    ``kernel`` or ``*_kernel``).  Kernel bodies model tight compute loops;
    a per-iteration allocation would never survive on A64FX and silently
    skews any wall-time measurement taken through them.

R002 ghost-write-via-module
    ``ghost_slices`` may only be called from ``repro/octree/ghost.py``.
    Ghost bands carry inter-sub-grid dependencies; writing them anywhere
    else bypasses the exchange protocol the race analysis reasons about.

R003 raw-view-copy
    In modules that import ``repro.kokkos``, views move between arrays
    only through ``deep_copy`` — not ``np.copyto(a.data, b.data)`` or
    ``a.data = b.data``, which dodge the transfer accounting and the
    memory-space sanitizer.  (``repro/kokkos/view.py`` itself is exempt:
    it implements ``deep_copy``.)

R004 no-bare-numpy-random
    No ``numpy.random.*`` legacy global-state API; use
    ``numpy.random.default_rng(seed)``.  Global-state draws make runs
    depend on import order, which breaks the determinism tests.

R005 no-uncoalesced-send
    No per-item ``network.send`` / ``transport.send`` inside a loop.
    A send per loop iteration is the O(leaf faces) message pattern the
    coalescing layer (``repro.comms``, see docs/comms.md) exists to
    replace with one bundle per neighbor locality; new code should go
    through a bundle plan.  Deliberate per-item paths (the
    ``--no-coalesce`` ablation, retransmit loops over already-bundled
    messages) carry a ``# reprolint: sanctioned-bundle`` comment on the
    send line or on the loop header.

R006 process-spawn-via-amt
    No direct ``multiprocessing.Process`` / ``multiprocessing.Pool`` use
    (including via ``get_context(...)``) outside ``repro/amt/parallel.py``.
    All process spawning goes through the AMT API
    (``repro.amt.parallel.ParallelEngine``), which owns worker lifecycle,
    typed crash/timeout semantics, and the shm cleanup guard; a raw
    Process escapes all three.

R007 shm-write-discipline
    In modules that map ``repro.amt.shm`` arenas, writes into an
    shm-backed view (``view[...] = ...``, augmented assigns,
    ``np.copyto(view, ...)``) may appear only inside barrier-delimited
    worker phase classes (classes defining a ``dispatch`` method, driven
    one command per BSP round) or in functions carrying
    ``@declare_effects`` — anything else is a cross-process write with no
    barrier ordering and no declared footprint, invisible to both the
    static plan verifier and the dynamic shm race detector.  Deliberate
    exceptions carry ``# reprolint: sanctioned-shm`` on the write line.
    (``repro/amt/shm.py`` and ``repro/analysis/shmrace.py`` are exempt:
    they implement the arena and its instrumentation.)

R008 flat-wire-payloads
    Arguments of control-plane sends (``conn``/``engine``/``locality``
    ``.send``/``.broadcast``/``.round``) must be flat buffers and
    primitives: no ``mesh``/``subgrid``/``nodes`` object graphs, no raw
    ``.data`` views, no lambdas.  Pickling a live shm view silently
    copies the pages and rebinds them as private memory on the far side —
    the exact aliasing bug the shm data plane exists to avoid.
    Deliberate exceptions carry ``# reprolint: sanctioned-wire``.

R009 array-backends-via-registry
    ``numba``, ``cupy`` and ``jax`` may only be imported by
    ``repro/kokkos/backend.py`` — the array-backend registry.  Anywhere
    else a direct import turns a missing *optional* dependency into a
    hard ImportError; kernels reach the accelerator module through
    ``View.xp`` / ``ArrayBackend.module`` so unavailable backends degrade
    to a skip instead.

R010 no-cold-plan-in-step-loop
    No cold plan construction (``build_plan``, ``build_hydro_plan``,
    ``build_bundle_plan``, ``ghost_index_plan``) inside a loop.  Plans are
    keyed on the mesh topology fingerprint and maintained incrementally
    (delta rebuild) or served from the content-addressed plan cache
    (``repro.core.plancache``); a cold build per loop iteration silently
    reinstates the regrid cold-path this machinery exists to kill — the
    exact ~5×-per-regrid overhead BENCH_fmm.json measures.  The sanctioned
    cache-miss hooks (the ``plan_for`` fallbacks) and deliberate
    per-scenario sweeps carry ``# reprolint: sanctioned-cold-build`` on
    the call line or the loop header.

R011 no-barrier-round-in-step-loop
    No blocking barrier round (``engine.round(...)``) inside a loop.  A
    barrier per loop iteration serializes the ghost exchange against the
    compute that could hide it; the dependency-grained alternative
    (``ParallelEngine.round_async`` + the futurized interior/halo
    schedule, see docs/parallel.md) exists precisely to overlap them.
    Deliberate barrier loops — the BSP ablation baseline, collective
    phases with genuine all-rank dependencies (reflux), test harnesses —
    carry ``# reprolint: sanctioned-barrier`` on the call line or the
    loop header.

Exit status: 0 clean, 1 findings reported, 2 usage error, 3 unreadable
or unparseable input (R000).  ``--json`` emits the findings as a machine
readable object for CI annotation.
"""

from __future__ import annotations

import ast
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Sequence, Set

_ALLOC_FNS = {
    "zeros", "ones", "empty", "full", "array", "arange",
    "zeros_like", "ones_like", "empty_like", "full_like", "copy",
}
#: repro/comms/bundle.py is the coalescing layer itself: it traces the
#: reference fill functions over index proxies (never live field data), so
#: its ghost_slices reads are how the exchange protocol gets built.
_GHOST_EXEMPT = (
    "repro/octree/ghost.py",
    "repro/comms/bundle.py",
    # The static plan verifier independently rebuilds the expected
    # ghost-band target set from the geometry to check the exchange.
    "repro/analysis/planverify.py",
)
_VIEW_EXEMPT = ("repro/kokkos/view.py",)
_RANDOM_ALLOWED = {"default_rng", "Generator", "SeedSequence"}
_SANCTION_TAG = "# reprolint: sanctioned-bundle"
_SEND_OWNERS = ("network", "transport")
#: repro/amt/parallel.py IS the AMT process-spawning API R006 funnels
#: everything through.
_MP_EXEMPT = ("repro/amt/parallel.py",)
_MP_SPAWN_NAMES = {"Process", "Pool"}
_SHM_SANCTION_TAG = "# reprolint: sanctioned-shm"
_WIRE_SANCTION_TAG = "# reprolint: sanctioned-wire"
#: The arena implementation and its event-log instrumentation are the
#: infrastructure R007 funnels everything through.
_SHM_EXEMPT = ("repro/amt/shm.py", "repro/analysis/shmrace.py")
#: Wire-owner receiver names: pipes and engine/locality control planes.
_WIRE_OWNERS = {"conn", "engine", "loc", "pipe", "locality"}
_WIRE_METHODS = {"send", "broadcast", "round"}
#: Attribute/name markers of non-flat payloads (object graphs, views).
_RICH_ATTRS = {"mesh", "subgrid", "nodes", "data"}
#: Optional array modules that must stay behind the backend registry.
_BACKEND_MODULES = {"numba", "cupy", "jax"}
#: The registry itself is the one sanctioned importer (R009).
_BACKEND_EXEMPT = ("repro/kokkos/backend.py",)
#: Cold plan constructors — every call pays the full traversal/trace cost
#: the fingerprint/delta/cache machinery exists to amortize (R010).
_COLD_BUILD_FNS = {
    "build_plan", "build_hydro_plan", "build_bundle_plan", "ghost_index_plan",
}
_COLD_SANCTION_TAG = "# reprolint: sanctioned-cold-build"
#: Engine-owner names whose ``.round(...)`` is a blocking barrier (R011);
#: matching on the receiver name keeps ``np.round`` and friends out.
_BARRIER_OWNERS = {"engine"}
_BARRIER_SANCTION_TAG = "# reprolint: sanctioned-barrier"


@dataclass(frozen=True)
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def _numpy_aliases(tree: ast.Module) -> Set[str]:
    """Names the module binds to the numpy package (``np``, ``numpy``...)."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def _imports_kokkos(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name.startswith("repro.kokkos") for a in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.startswith("repro.kokkos"):
                return True
            if module == "repro" and any(a.name == "kokkos" for a in node.names):
                return True
    return False


def _is_kernel_fn(node: ast.AST) -> bool:
    return isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
        node.name == "kernel" or node.name.endswith("_kernel")
    )


def _is_numpy_attr_call(call: ast.Call, aliases: Set[str], names: Set[str]) -> bool:
    fn = call.func
    return (
        isinstance(fn, ast.Attribute)
        and fn.attr in names
        and isinstance(fn.value, ast.Name)
        and fn.value.id in aliases
    )


def _is_dot_data(node: ast.AST) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == "data"


def _path_matches(path: str, suffixes: Sequence[str]) -> bool:
    normalized = path.replace("\\", "/")
    return any(normalized.endswith(suffix) for suffix in suffixes)


def _check_hot_loop_alloc(tree: ast.Module, path: str, aliases: Set[str]) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if not _is_kernel_fn(node):
            continue
        for loop in ast.walk(node):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for call in ast.walk(loop):
                if isinstance(call, ast.Call) and _is_numpy_attr_call(
                    call, aliases, _ALLOC_FNS
                ):
                    findings.append(Finding(
                        path, call.lineno, "R001",
                        f"allocation ({ast.unparse(call.func)}) inside a loop in "
                        f"kernel function {node.name!r}; hoist it out of the hot loop",
                    ))
    return findings


def _check_ghost_writes(tree: ast.Module, path: str) -> List[Finding]:
    if _path_matches(path, _GHOST_EXEMPT):
        return []
    findings = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "ghost_slices"
        ):
            findings.append(Finding(
                path, node.lineno, "R002",
                "ghost bands may only be touched through repro.octree.ghost; "
                "direct ghost_slices access bypasses the exchange protocol",
            ))
    return findings


def _check_raw_view_copy(tree: ast.Module, path: str, aliases: Set[str]) -> List[Finding]:
    if not _imports_kokkos(tree) or _path_matches(path, _VIEW_EXEMPT):
        return []
    findings = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and _is_numpy_attr_call(node, aliases, {"copyto"})
            and len(node.args) >= 2
            and _is_dot_data(node.args[0])
            and _is_dot_data(node.args[1])
        ):
            findings.append(Finding(
                path, node.lineno, "R003",
                "move views with repro.kokkos.deep_copy, not np.copyto on raw "
                ".data (skips transfer accounting and the space sanitizer)",
            ))
        elif (
            isinstance(node, ast.Assign)
            and any(_is_dot_data(t) for t in node.targets)
            and _is_dot_data(node.value)
        ):
            findings.append(Finding(
                path, node.lineno, "R003",
                "aliasing one view's .data into another bypasses deep_copy",
            ))
    return findings


def _check_bare_random(tree: ast.Module, path: str, aliases: Set[str]) -> List[Finding]:
    findings = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "random"
            and isinstance(node.value.value, ast.Name)
            and node.value.value.id in aliases
            and node.attr not in _RANDOM_ALLOWED
        ):
            findings.append(Finding(
                path, node.lineno, "R004",
                f"legacy numpy.random.{node.attr} uses global state; "
                "seed an explicit numpy.random.default_rng instead",
            ))
        elif (
            isinstance(node, ast.ImportFrom)
            and node.module == "numpy.random"
            and any(a.name not in _RANDOM_ALLOWED for a in node.names)
        ):
            findings.append(Finding(
                path, node.lineno, "R004",
                "import only default_rng/Generator/SeedSequence from "
                "numpy.random; the legacy API uses global state",
            ))
    return findings


def _send_owner(call: ast.Call) -> str:
    """The receiver name of a ``<owner>.send(...)`` call if it looks like a
    message-layer object, else ``""``.

    Matches ``network.send``, ``self.transport.send`` and the like by the
    final attribute/name component containing "network" or "transport" —
    the two object families that put messages on the virtual wire.
    """
    fn = call.func
    if not (isinstance(fn, ast.Attribute) and fn.attr == "send"):
        return ""
    base = fn.value
    if isinstance(base, ast.Name):
        name = base.id
    elif isinstance(base, ast.Attribute):
        name = base.attr
    else:
        return ""
    lowered = name.lower()
    return name if any(owner in lowered for owner in _SEND_OWNERS) else ""


def _check_uncoalesced_send(
    tree: ast.Module, path: str, sanctioned: Set[int]
) -> List[Finding]:
    findings = []
    seen: Set[tuple] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        if node.lineno in sanctioned:
            continue
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            owner = _send_owner(call)
            if not owner or call.lineno in sanctioned:
                continue
            key = (call.lineno, call.col_offset)
            if key in seen:  # nested loops walk the same call twice
                continue
            seen.add(key)
            findings.append(Finding(
                path, call.lineno, "R005",
                f"per-item {owner}.send inside a loop sends O(items) "
                "messages; coalesce through a repro.comms bundle plan, or "
                f"mark a deliberate path with {_SANCTION_TAG!r}",
            ))
    return findings


def _multiprocessing_aliases(tree: ast.Module) -> Set[str]:
    """Names bound to the multiprocessing package (``mp``, ...)."""
    aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "multiprocessing":
                    aliases.add((alias.asname or alias.name).split(".")[0])
    return aliases


def _is_get_context_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    fn = node.func
    return (isinstance(fn, ast.Name) and fn.id == "get_context") or (
        isinstance(fn, ast.Attribute) and fn.attr == "get_context"
    )


def _context_names(tree: ast.Module) -> Set[str]:
    """Variables assigned from a ``get_context(...)`` call — spawn contexts
    whose ``.Process``/``.Pool`` attributes R006 also covers."""
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and _is_get_context_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    names.add(target.attr)
    return names


def _check_process_spawn(tree: ast.Module, path: str) -> List[Finding]:
    if _path_matches(path, _MP_EXEMPT):
        return []
    findings = []
    mp_aliases = _multiprocessing_aliases(tree)
    ctx_names = _context_names(tree)
    message = (
        "spawn worker processes through repro.amt.parallel.ParallelEngine, "
        "not raw multiprocessing {name} (the AMT API owns worker lifecycle, "
        "typed crash semantics, and shm cleanup)"
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.split(".")[0] == "multiprocessing":
                for alias in node.names:
                    if alias.name in _MP_SPAWN_NAMES:
                        findings.append(Finding(
                            path, node.lineno, "R006",
                            message.format(name=alias.name),
                        ))
        elif isinstance(node, ast.Attribute) and node.attr in _MP_SPAWN_NAMES:
            base = node.value
            direct = isinstance(base, ast.Name) and base.id in (
                mp_aliases | ctx_names
            )
            dotted = (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id in mp_aliases
            )
            via_context = _is_get_context_call(base)
            if direct or dotted or via_context:
                findings.append(Finding(
                    path, node.lineno, "R006", message.format(name=node.attr),
                ))
    return findings


def _sanctioned_lines(source: str, tag: str = _SANCTION_TAG) -> Set[int]:
    return {
        i
        for i, line in enumerate(source.splitlines(), start=1)
        if tag in line
    }


def _imports_module(tree: ast.Module, dotted: str) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name.startswith(dotted) for a in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "").startswith(dotted):
                return True
    return False


def _has_declare_effects(fn: ast.AST) -> bool:
    for dec in getattr(fn, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name == "declare_effects":
            return True
    return False


def _shm_view_names(tree: ast.Module) -> Set[str]:
    """Targets ever bound from an ``<arena>.ndarray(...)`` call — the
    names R007 treats as shm-backed views (attribute or local)."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        # x = arena.ndarray(...) and x = arena.ndarray(...).reshape(...)
        calls = [n for n in ast.walk(value)
                 if isinstance(n, ast.Call)
                 and isinstance(n.func, ast.Attribute)
                 and n.func.attr == "ndarray"]
        if not calls:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                names.add(target.attr)
    return names


def _base_name(node: ast.AST) -> str:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _check_shm_write_discipline(
    tree: ast.Module, path: str, sanctioned: Set[int]
) -> List[Finding]:
    if _path_matches(path, _SHM_EXEMPT) or not _imports_module(
        tree, "repro.amt.shm"
    ):
        return []
    views = _shm_view_names(tree)
    if not views:
        return []

    # Functions allowed to write shm: methods of barrier-driven phase
    # classes (a class defining ``dispatch`` executes one command per BSP
    # round) and functions with declared effects.
    allowed: Set[ast.AST] = set()
    for cls in ast.walk(tree):
        if isinstance(cls, ast.ClassDef) and any(
            isinstance(c, (ast.FunctionDef, ast.AsyncFunctionDef))
            and c.name == "dispatch"
            for c in cls.body
        ):
            allowed.update(
                n for n in ast.walk(cls)
                if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
            )
    for fn in ast.walk(tree):
        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            _has_declare_effects(fn)
        ):
            allowed.add(fn)

    def enclosing_ok(stack: List[ast.AST]) -> bool:
        return any(f in allowed for f in stack)

    findings: List[Finding] = []

    def is_view_store(target: ast.AST) -> bool:
        return isinstance(target, ast.Subscript) and (
            _base_name(target.value) in views
        )

    def visit(node: ast.AST, stack: List[ast.AST]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack = stack + [node]
        for child in ast.iter_child_nodes(node):
            visit(child, stack)
        if enclosing_ok(stack) or getattr(node, "lineno", 0) in sanctioned:
            return
        hit = None
        if isinstance(node, ast.Assign) and any(
            is_view_store(t) for t in node.targets
        ):
            hit = _base_name(node.targets[0].value) or "view"
        elif isinstance(node, ast.AugAssign) and is_view_store(node.target):
            hit = _base_name(node.target.value) or "view"
        elif (
            isinstance(node, ast.Call)
            and _is_numpy_attr_call(node, _numpy_aliases(tree), {"copyto"})
            and node.args
            and _base_name(node.args[0]) in views
        ):
            hit = _base_name(node.args[0])
        if hit:
            findings.append(Finding(
                path, node.lineno, "R007",
                f"write to shm view {hit!r} outside a barrier-delimited "
                "dispatch phase and without @declare_effects; the race "
                "checkers cannot order it — move it into a phase, declare "
                f"its footprint, or mark it {_SHM_SANCTION_TAG!r}",
            ))

    visit(tree, [])
    return findings


def _contains_rich_payload(node: ast.AST) -> str:
    """A marker string when the expression tree smuggles a non-flat
    object across the wire, else ``""``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in _RICH_ATTRS:
            return f".{sub.attr}"
        if isinstance(sub, ast.Name) and (
            sub.id == "mesh" or sub.id.endswith("mesh")
        ):
            return sub.id
        if isinstance(sub, ast.Lambda):
            return "lambda"
    return ""


def _check_flat_wire_payloads(
    tree: ast.Module, path: str, sanctioned: Set[int]
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _WIRE_METHODS
        ):
            continue
        owner = _base_name(node.func.value).lower()
        if owner not in _WIRE_OWNERS and not owner.endswith(
            ("conn", "engine", "pipe")
        ):
            continue
        if node.lineno in sanctioned:
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            marker = _contains_rich_payload(arg)
            if marker:
                findings.append(Finding(
                    path, node.lineno, "R008",
                    f"non-flat payload ({marker}) in "
                    f"{_base_name(node.func.value)}.{node.func.attr}: only "
                    "flat buffers/primitives may cross the wire (pickling "
                    "views or object graphs silently copies shm pages); "
                    f"mark a deliberate path {_WIRE_SANCTION_TAG!r}",
                ))
                break
    return findings


def _check_backend_imports(tree: ast.Module, path: str) -> List[Finding]:
    """R009: numba/cupy/jax imports only inside the backend registry."""
    if _path_matches(path, _BACKEND_EXEMPT):
        return []
    findings: List[Finding] = []
    message = (
        "direct import of optional array module {name!r}: go through the "
        "backend registry (repro.kokkos.backend / View.xp) so a missing "
        "install degrades to an unavailable backend, not an ImportError"
    )
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                if root in _BACKEND_MODULES:
                    findings.append(Finding(
                        path, node.lineno, "R009", message.format(name=root)
                    ))
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            root = node.module.split(".", 1)[0]
            if root in _BACKEND_MODULES:
                findings.append(Finding(
                    path, node.lineno, "R009", message.format(name=root)
                ))
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "import_module"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.split(".", 1)[0] in _BACKEND_MODULES
        ):
            findings.append(Finding(
                path, node.lineno, "R009",
                message.format(name=node.args[0].value.split(".", 1)[0]),
            ))
    return findings


def _check_cold_plan_build(
    tree: ast.Module, path: str, sanctioned: Set[int]
) -> List[Finding]:
    """R010: no cold plan construction inside a loop body."""
    findings: List[Finding] = []
    seen: Set[tuple] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        if node.lineno in sanctioned:
            continue
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            fn = call.func
            name = fn.attr if isinstance(fn, ast.Attribute) else (
                fn.id if isinstance(fn, ast.Name) else ""
            )
            if name not in _COLD_BUILD_FNS or call.lineno in sanctioned:
                continue
            key = (call.lineno, call.col_offset)
            if key in seen:  # nested loops walk the same call twice
                continue
            seen.add(key)
            findings.append(Finding(
                path, call.lineno, "R010",
                f"cold plan construction ({name}) inside a loop re-pays the "
                "full rebuild every iteration; go through plan_for (delta "
                "rebuild / plan cache keyed on the topology fingerprint), or "
                f"mark a deliberate path with {_COLD_SANCTION_TAG!r}",
            ))
    return findings


def _check_barrier_round_in_loop(
    tree: ast.Module, path: str, sanctioned: Set[int]
) -> List[Finding]:
    """R011: no blocking barrier round inside a loop body."""
    findings: List[Finding] = []
    seen: Set[tuple] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.For, ast.While)):
            continue
        if node.lineno in sanctioned:
            continue
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            fn = call.func
            if not (isinstance(fn, ast.Attribute) and fn.attr == "round"):
                continue
            owner = fn.value
            owner_name = owner.attr if isinstance(owner, ast.Attribute) else (
                owner.id if isinstance(owner, ast.Name) else ""
            )
            if owner_name not in _BARRIER_OWNERS or call.lineno in sanctioned:
                continue
            key = (call.lineno, call.col_offset)
            if key in seen:  # nested loops walk the same call twice
                continue
            seen.add(key)
            findings.append(Finding(
                path, call.lineno, "R011",
                "blocking barrier round inside a loop serializes the "
                "exchange against compute that could hide it; use "
                "round_async with the interior/halo overlap schedule, or "
                "mark a deliberate barrier (BSP ablation, reflux "
                f"collective) with {_BARRIER_SANCTION_TAG!r}",
            ))
    return findings


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text; the unit of testing."""
    tree = ast.parse(source, filename=path)
    aliases = _numpy_aliases(tree)
    findings: List[Finding] = []
    findings += _check_hot_loop_alloc(tree, path, aliases)
    findings += _check_ghost_writes(tree, path)
    findings += _check_raw_view_copy(tree, path, aliases)
    findings += _check_bare_random(tree, path, aliases)
    findings += _check_uncoalesced_send(tree, path, _sanctioned_lines(source))
    findings += _check_process_spawn(tree, path)
    findings += _check_shm_write_discipline(
        tree, path, _sanctioned_lines(source, _SHM_SANCTION_TAG)
    )
    findings += _check_flat_wire_payloads(
        tree, path, _sanctioned_lines(source, _WIRE_SANCTION_TAG)
    )
    findings += _check_backend_imports(tree, path)
    findings += _check_cold_plan_build(
        tree, path, _sanctioned_lines(source, _COLD_SANCTION_TAG)
    )
    findings += _check_barrier_round_in_loop(
        tree, path, _sanctioned_lines(source, _BARRIER_SANCTION_TAG)
    )
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def iter_python_files(paths: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


def lint_paths(paths: Iterable[str]) -> List[Finding]:
    findings: List[Finding] = []
    for file in iter_python_files(paths):
        try:
            source = file.read_text()
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(Finding(str(file), 0, "R000", f"unreadable: {exc}"))
            continue
        try:
            findings.extend(lint_source(source, str(file)))
        except SyntaxError as exc:
            findings.append(Finding(str(file), exc.lineno or 0, "R000", f"syntax error: {exc.msg}"))
    return findings


#: Stable exit codes (CI contracts on these).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_UNPARSEABLE = 3


def main(argv: List[str]) -> int:
    json_mode = "--json" in argv
    paths = [a for a in argv if a != "--json"]
    if not paths or paths[0] in ("-h", "--help"):
        print(__doc__)
        return EXIT_CLEAN if paths else EXIT_USAGE
    findings = lint_paths(paths)
    n_files = len(iter_python_files(paths))
    if json_mode:
        print(json.dumps(
            {
                "files_checked": n_files,
                "clean": not findings,
                "findings": [
                    {
                        "path": f.path,
                        "line": f.line,
                        "rule": f.rule,
                        "message": f.message,
                    }
                    for f in findings
                ],
            },
            indent=2,
        ))
    else:
        for finding in findings:
            print(finding)
        status = f"{len(findings)} finding(s)" if findings else "clean"
        print(f"reprolint: {n_files} file(s) checked, {status}")
    if any(f.rule == "R000" for f in findings):
        return EXIT_UNPARSEABLE
    return EXIT_FINDINGS if findings else EXIT_CLEAN


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
