"""Seeded-race smoke: prove the process-backend checkers are load-bearing.

    PYTHONPATH=src python -m tools.seeded_race_smoke

Injects a real scatter-overlap race into the ghost bundle plan (two
remote bundles writing the same arena elements from different ranks) and
drives one hydro step through `ProcessHydroExecutor` three times:

1. **static leg** — plan verification on: the executor must refuse the
   plan with a `PlanVerificationError` naming `bundle-dst-overlap`,
   before any worker forks;
2. **dynamic leg** — verification off, race detection on: the injected
   write-write conflict must surface as an `ShmRaceError` at the first
   ghost barrier;
3. **control leg** — both checkers off: the exact same race must run to
   completion *silently*.  This is the guard against silently-green
   checkers: if the control leg errors, the "race" we seeded was being
   caught by something other than the checkers (or was never a clean
   seed), and legs 1–2 prove nothing.

Exit status 0 only when all three legs behave as specified; 1 otherwise,
with one line per leg on stdout.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.planverify import PlanVerificationError  # noqa: E402
from repro.analysis.shmrace import ShmRaceError  # noqa: E402
from repro.amt.shm import live_segments  # noqa: E402
from repro.hydro.process_backend import ProcessHydroExecutor  # noqa: E402


def _make_mesh():
    from tests.test_hydro_plan import make_state_mesh

    return make_state_mesh(levels=1, refine_keys=(0,))


def _inject(plan) -> None:  # noqa: ANN001
    from tests.test_shmrace import inject_scatter_overlap

    inject_scatter_overlap(plan)


def _run_leg(verify_plans: bool, detect_races: bool):
    """One hydro step with the seeded plan; returns the raised checker
    error (or None when the step completed)."""
    mesh, eos = _make_mesh()
    ex = ProcessHydroExecutor(
        mesh, eos=eos, nprocs=2,
        verify_plans=verify_plans, detect_races=detect_races,
    )
    ex.bundle_plan_hook = _inject
    try:
        ex.step(1e-4)
        return None
    except (PlanVerificationError, ShmRaceError) as err:
        return err
    finally:
        ex.close()


def main() -> int:
    ok = True

    err = _run_leg(verify_plans=True, detect_races=False)
    static_ok = isinstance(err, PlanVerificationError) and any(
        v.check == "bundle-dst-overlap" for v in err.violations
    )
    ok &= static_ok
    print(f"static leg  (verify on):            "
          f"{'caught pre-fork' if static_ok else 'MISSED'} "
          f"({type(err).__name__ if err else 'no error'})")

    err = _run_leg(verify_plans=False, detect_races=True)
    dynamic_ok = isinstance(err, ShmRaceError)
    ok &= dynamic_ok
    print(f"dynamic leg (verify off, detect on): "
          f"{'caught at barrier' if dynamic_ok else 'MISSED'} "
          f"({type(err).__name__ if err else 'no error'})")

    err = _run_leg(verify_plans=False, detect_races=False)
    control_ok = err is None
    ok &= control_ok
    print(f"control leg (checkers off):          "
          f"{'race ran silently, as expected' if control_ok else f'unexpected {type(err).__name__}'}")

    leaked = live_segments()
    if leaked:
        ok = False
        print(f"shm leak: {leaked}")

    print(f"seeded-race smoke: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
