"""PJM job-manager analog: environment parsing, boost policy, launch."""

import pytest

from repro.amt.pjm import PjmJob, PjmScheduler


class TestEnvironment:
    def test_round_trip(self):
        job = PjmJob(nodes=16, procs_per_node=1, job_name="octo")
        parsed = PjmJob.from_environment(job.environment())
        assert parsed.nodes == 16
        assert parsed.procs_per_node == 1
        assert parsed.job_name == "octo"

    def test_missing_keys(self):
        with pytest.raises(KeyError):
            PjmJob.from_environment({})

    def test_inconsistent_environment(self):
        env = PjmJob(nodes=4).environment()
        env["PJM_MPI_PROC"] = "7"
        with pytest.raises(ValueError):
            PjmJob.from_environment(env)


class TestScheduler:
    def test_launch_builds_runtime(self):
        scheduler = PjmScheduler()
        rt = scheduler.launch(PjmJob(nodes=4, cores_per_proc=2))
        assert rt.n_localities == 4
        assert rt.localities[0].pool.n_workers == 2
        assert scheduler.submitted[0].nodes == 4

    def test_boost_allowed_small(self):
        PjmScheduler(boost_max_nodes=10).validate(PjmJob(nodes=8, boost_mode=True))

    def test_boost_rejected_large(self):
        # Fugaku restricts boost mode to small allocations (paper SVI-A).
        with pytest.raises(ValueError, match="boost"):
            PjmScheduler(boost_max_nodes=384).launch(
                PjmJob(nodes=1024, boost_mode=True)
            )

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            PjmScheduler().validate(PjmJob(nodes=0))

    def test_multi_proc_per_node(self):
        rt = PjmScheduler().launch(PjmJob(nodes=2, procs_per_node=4))
        assert rt.n_localities == 8
