"""Dynamic shm race detection (repro.analysis.shmrace).

Unit tests for the event log / writer / detector plus the end-to-end
acceptance case: a seeded scatter-overlap race in the ghost bundle plan
is caught by the dynamic detector at the first barrier, while a clean
run over both wires replays thousands of access events with zero
findings.
"""

import numpy as np
import pytest

from repro.amt.shm import live_segments
from repro.analysis.shmrace import (
    MODE_ACCUM,
    MODE_READ,
    MODE_WRITE,
    PHASE_NONE,
    REGION_ALL,
    REGION_GHOST,
    REGION_INTERIOR,
    SEG_FIELDS,
    SEG_FLUX,
    ShmEventLog,
    ShmRaceDetector,
    ShmRaceError,
    field_access_rows,
    slot_range_rows,
)
from repro.core.crosscheck import crosscheck_hydro
from repro.hydro.process_backend import ProcessHydroExecutor
from tests.test_hydro_plan import make_state_mesh

pytestmark = pytest.mark.timeout(300)


class TestEventLog:
    def test_log_and_read_back(self):
        with ShmEventLog(nranks=2, capacity=8) as log:
            w0 = log.writer(0)
            w0.log(3, slot_range_rows(0, 4, MODE_WRITE, SEG_FIELDS))
            w0.log(4, slot_range_rows(1, 2, MODE_READ, SEG_FLUX,
                                      REGION_INTERIOR))
            rows = log.events(0)
            assert rows.shape == (2, 7)
            assert rows[0].tolist() == [3, MODE_WRITE, SEG_FIELDS, 0, 4,
                                        REGION_ALL, PHASE_NONE]
            assert rows[1].tolist() == [4, MODE_READ, SEG_FLUX, 1, 2,
                                        REGION_INTERIOR, PHASE_NONE]
            assert log.events(1).shape == (0, 7)

    def test_overflow_counts_dropped_never_raises(self):
        with ShmEventLog(nranks=1, capacity=2) as log:
            w = log.writer(0)
            rows = np.repeat(
                slot_range_rows(0, 1, MODE_READ, SEG_FIELDS), 5, axis=0
            )
            w.log(0, rows)
            assert log.events(0).shape == (2, 7)
            assert log.dropped(0) == 3
            log.reset()
            assert log.events(0).shape == (0, 7)
            assert log.dropped(0) == 3  # cumulative across resets

    def test_unlinks_segment(self):
        log = ShmEventLog(nranks=1)
        name = log.arena.name
        assert name in live_segments()
        log.unlink()
        assert name not in live_segments()

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            ShmEventLog(nranks=0)
        with pytest.raises(ValueError):
            ShmEventLog(nranks=1, capacity=0)


class TestFieldAccessRows:
    N, G, NF = 4, 1, 2

    def _idx(self, slot, field, i, j, k):
        m = self.N + 2 * self.G
        return slot * self.NF * m**3 + field * m**3 + (i * m + j) * m + k

    def test_interior_and_ghost_classified(self):
        interior = np.array([self._idx(0, 0, 1, 1, 1)])
        ghost = np.array([self._idx(0, 1, 0, 3, 3)])
        rows = field_access_rows(
            [interior, ghost], MODE_WRITE, self.N, self.G, self.NF
        )
        assert rows.tolist() == [
            [MODE_WRITE, SEG_FIELDS, 0, 1, REGION_INTERIOR],
            [MODE_WRITE, SEG_FIELDS, 0, 1, REGION_GHOST],
        ]

    def test_consecutive_slots_merge(self):
        idx = np.array([
            self._idx(0, 0, 2, 2, 2),
            self._idx(1, 0, 2, 2, 2),
            self._idx(3, 0, 2, 2, 2),
        ])
        rows = field_access_rows([idx], MODE_READ, self.N, self.G, self.NF)
        assert rows.tolist() == [
            [MODE_READ, SEG_FIELDS, 0, 2, REGION_INTERIOR],
            [MODE_READ, SEG_FIELDS, 3, 4, REGION_INTERIOR],
        ]

    def test_empty_inputs(self):
        rows = field_access_rows(
            [np.empty(0, dtype=np.intp)], MODE_READ, self.N, self.G, self.NF
        )
        assert rows.shape == (0, 5)


def _two_rank_log():
    return ShmEventLog(nranks=2, capacity=64)


class TestDetector:
    def _scan(self, rows_by_rank, raise_on_finding=False):
        with _two_rank_log() as log:
            for rank, entries in rows_by_rank.items():
                w = log.writer(rank)
                for epoch, rows in entries:
                    w.log(epoch, rows)
            det = ShmRaceDetector(log, raise_on_finding=raise_on_finding)
            return det, det.scan()

    def test_concurrent_overlapping_writes_flagged(self):
        det, found = self._scan({
            0: [(2, slot_range_rows(0, 4, MODE_WRITE, SEG_FIELDS))],
            1: [(2, slot_range_rows(3, 8, MODE_WRITE, SEG_FIELDS))],
        })
        [f] = found
        assert f.kind == "shm-race"
        assert f.task_a == "rank0@epoch2"
        assert f.task_b == "rank1@epoch2"
        assert f.resource_a.space == "shm"
        assert "fields" in f.resource_a.subgrid

    def test_write_read_flagged(self):
        _, found = self._scan({
            0: [(1, slot_range_rows(0, 2, MODE_WRITE, SEG_FIELDS))],
            1: [(1, slot_range_rows(1, 2, MODE_READ, SEG_FIELDS))],
        })
        assert len(found) == 1

    def test_commuting_modes_ok(self):
        for mode in (MODE_READ, MODE_ACCUM):
            _, found = self._scan({
                0: [(1, slot_range_rows(0, 4, mode, SEG_FIELDS))],
                1: [(1, slot_range_rows(0, 4, mode, SEG_FIELDS))],
            })
            assert found == []

    def test_barrier_orders_distinct_epochs(self):
        _, found = self._scan({
            0: [(1, slot_range_rows(0, 4, MODE_WRITE, SEG_FIELDS))],
            1: [(2, slot_range_rows(0, 4, MODE_WRITE, SEG_FIELDS))],
        })
        assert found == []

    def test_disjoint_ranges_and_segments_ok(self):
        _, found = self._scan({
            0: [(1, slot_range_rows(0, 4, MODE_WRITE, SEG_FIELDS))],
            1: [(1, slot_range_rows(4, 8, MODE_WRITE, SEG_FIELDS)),
                (1, slot_range_rows(0, 4, MODE_WRITE, SEG_FLUX))],
        })
        assert found == []

    def test_interior_ghost_regions_disjoint(self):
        """The ghost-round pattern: donor reads the interior of a chunk
        whose ghost band the owner writes — same slot, no race."""
        _, found = self._scan({
            0: [(1, slot_range_rows(0, 1, MODE_READ, SEG_FIELDS,
                                    REGION_INTERIOR))],
            1: [(1, slot_range_rows(0, 1, MODE_WRITE, SEG_FIELDS,
                                    REGION_GHOST))],
        })
        assert found == []

    def test_region_all_aliases_both(self):
        _, found = self._scan({
            0: [(1, slot_range_rows(0, 1, MODE_WRITE, SEG_FIELDS,
                                    REGION_ALL))],
            1: [(1, slot_range_rows(0, 1, MODE_READ, SEG_FIELDS,
                                    REGION_GHOST))],
        })
        assert len(found) == 1

    def test_duplicate_conflicts_deduped(self):
        rows = slot_range_rows(0, 2, MODE_WRITE, SEG_FIELDS)
        _, found = self._scan({
            0: [(1, rows), (1, rows)],
            1: [(1, rows)],
        })
        assert len(found) == 1

    def test_raise_mode_and_counters(self):
        with _two_rank_log() as log:
            log.writer(0).log(1, slot_range_rows(0, 2, MODE_WRITE,
                                                 SEG_FIELDS))
            log.writer(1).log(1, slot_range_rows(0, 2, MODE_WRITE,
                                                 SEG_FIELDS))
            det = ShmRaceDetector(log)
            with pytest.raises(ShmRaceError):
                det.scan()
            assert det.events_seen == 2
            assert det.scans == 1
            assert len(det.findings) == 1
            assert det.dropped == 0
            # The scan drained the log: a second scan is clean.
            assert det.scan() == []


def inject_scatter_overlap(plan):
    """Seed a real race: point one remote bundle's scatter targets at
    elements another rank's bundle already writes."""
    remote = [
        b for _, b in sorted(plan.bundles.items())
        if b.src_locality != b.dst_locality and b.copy_dst.size
    ]
    first = remote[0]
    other = next(
        b for b in remote if b.dst_locality != first.dst_locality
        and b.copy_dst.size
    )
    k = min(first.copy_dst.size, other.copy_dst.size, 16)
    other.copy_dst[:k] = first.copy_dst[:k]


class TestSeededRace:
    def test_dynamic_detector_catches_injection(self):
        """Static verification off, dynamic detection on: the injected
        overlap must surface as an ShmRaceError at a ghost barrier."""
        mesh, eos = make_state_mesh(levels=1, refine_keys=(0,))
        ex = ProcessHydroExecutor(
            mesh, eos=eos, nprocs=2, verify_plans=False, detect_races=True
        )
        ex.bundle_plan_hook = inject_scatter_overlap
        try:
            with pytest.raises(ShmRaceError) as err:
                ex.step(1e-4)
            assert "shm race" in str(err.value)
            assert ex.race_detector.findings
            assert all(
                f.kind == "shm-race" for f in ex.race_detector.findings
            )
        finally:
            ex.close()
        assert live_segments() == ()

    def test_clean_run_zero_findings_shm_wire(self):
        mesh, eos = make_state_mesh(levels=1, refine_keys=(0,))
        ex = ProcessHydroExecutor(mesh, eos=eos, nprocs=2, detect_races=True)
        try:
            ex.step(1e-4)
            ex.step(1e-4)
            det = ex.race_detector
            assert det.findings == []
            assert det.events_seen > 0
            assert det.scans > 0
            assert det.dropped == 0
        finally:
            ex.close()


class TestCrosscheckWires:
    @pytest.mark.parametrize("wire", ["shm", "pipe"])
    def test_blast_crosscheck_zero_findings(self, wire):
        mesh, _ = make_state_mesh(levels=1, refine_keys=(0,))
        result = crosscheck_hydro(
            mesh, steps=2, nprocs=2, wire=wire, detect_races=True
        )
        assert result.ok
        assert result.race_findings == 0
        assert result.race_events > 0
