"""Order-of-accuracy checks for the hydro scheme.

Advect a smooth density pulse at constant velocity across a periodic-free
domain (measured before anything reaches the boundary): the MUSCL scheme
converges at close to second order on smooth data; the constant scheme at
first order.  Exact advection solutions make the errors parameter-free.
"""

import numpy as np
import pytest

from repro.hydro import HydroIntegrator, IdealGasEOS
from repro.octree import AmrMesh, Field


def advection_mesh(levels, velocity=0.5, width=0.04):
    """Uniform mesh with a Gaussian pulse advected in +x by pressure-free
    balance (uniform pressure, uniform velocity: the exact solution is pure
    translation)."""
    eos = IdealGasEOS(gamma=1.4)
    mesh = AmrMesh(n=8, ghost=2, domain_size=2.0)
    for _ in range(levels):
        for key in list(mesh.leaf_keys()):
            mesh.refine(key)
    p0 = 1.0
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        rho = 1.0 + 0.3 * np.exp(-(x**2 + y**2 + z**2) / width)
        eint = np.full_like(rho, p0 / (eos.gamma - 1.0))
        leaf.subgrid.set_interior(Field.RHO, rho)
        leaf.subgrid.set_interior(Field.SX, rho * velocity)
        leaf.subgrid.set_interior(Field.EGAS, eint + 0.5 * rho * velocity**2)
        leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
    mesh.restrict_all()
    return mesh, eos


def advection_error(levels, t_end=0.08, velocity=0.5, reconstruction="muscl"):
    mesh, eos = advection_mesh(levels, velocity=velocity)
    integ = HydroIntegrator(mesh, eos, cfl=0.3, reconstruction=reconstruction)
    integ.run(t_end)
    err = 0.0
    volume = 0.0
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        exact = 1.0 + 0.3 * np.exp(
            -(((x - velocity * integ.time) ** 2) + y**2 + z**2) / 0.04
        )
        err += float(
            np.abs(leaf.subgrid.interior_view(Field.RHO) - exact).sum()
        ) * leaf.cell_volume
        volume += leaf.cell_volume * leaf.subgrid.n**0  # count volume once
    return err


@pytest.mark.slow
class TestAdvectionConvergence:
    def test_muscl_converges_between_first_and_second_order(self):
        coarse = advection_error(1)
        fine = advection_error(2)
        rate = np.log2(coarse / fine)
        # Smooth advection: minmod-MUSCL typically lands ~1.5-2.
        assert 1.2 < rate < 2.4, rate

    def test_muscl_beats_constant_reconstruction(self):
        muscl = advection_error(2, reconstruction="muscl")
        constant = advection_error(2, reconstruction="constant")
        assert muscl < 0.6 * constant

    def test_pulse_actually_moves(self):
        mesh, eos = advection_mesh(1)
        from repro.core.diagnostics import center_of_mass

        # COM of the over-density, before and after.
        integ = HydroIntegrator(mesh, eos, cfl=0.3)
        com0 = center_of_mass(mesh)
        integ.run(0.08)
        com1 = center_of_mass(mesh)
        assert com1[0] > com0[0]
        # The mean density is 1 everywhere, so the COM shift understates the
        # pulse motion; just require the right direction and same y/z.
        assert abs(com1[1] - com0[1]) < 1e-10
