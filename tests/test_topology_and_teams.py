"""Topology models and the Kokkos TeamPolicy."""

import numpy as np
import pytest

from repro.kokkos import SerialSpace, TeamPolicy, parallel_for
from repro.machines import FUGAKU, OOKAMI
from repro.machines.topology import (
    FatTreeTopology,
    TorusTopology,
    effective_interconnect,
)


class TestTorus:
    def test_single_node_no_hops(self):
        assert TorusTopology().mean_hops(1) == 0.0

    def test_hops_grow_with_allocation(self):
        torus = TorusTopology()
        assert torus.mean_hops(1024) > torus.mean_hops(64) > torus.mean_hops(8)

    def test_cube_root_scaling(self):
        torus = TorusTopology(effective_dims=3)
        assert torus.mean_hops(8_000) / torus.mean_hops(8) == pytest.approx(10.0)

    def test_latency_composition(self):
        torus = TorusTopology(per_hop_latency_us=0.1)
        assert torus.latency_us(0.9, 1) == pytest.approx(0.9)
        assert torus.latency_us(0.9, 64) > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            TorusTopology().mean_hops(0)


class TestFatTree:
    def test_bounded_hops(self):
        tree = FatTreeTopology(radix=40)
        # Hop count saturates: growing from 1k to 16k nodes adds at most
        # one tier (two hops).
        assert tree.mean_hops(16_384) - tree.mean_hops(1_024) <= 2.0

    def test_single_node(self):
        assert FatTreeTopology().mean_hops(1) == 0.0

    def test_small_cluster_one_tier(self):
        tree = FatTreeTopology(radix=40)
        assert tree.tiers(30) == 1

    def test_torus_eventually_overtakes_tree(self):
        """The Fig. 10 hypothesis: at large allocations the torus' growing
        diameter makes its effective latency exceed the fat tree's."""
        torus = TorusTopology()
        tree = FatTreeTopology()
        fugaku = effective_interconnect(FUGAKU.interconnect, torus, 8192)
        ookami = effective_interconnect(OOKAMI.interconnect, tree, 8192)
        assert fugaku.latency_us > ookami.latency_us

    def test_effective_interconnect_preserves_bandwidth(self):
        out = effective_interconnect(FUGAKU.interconnect, TorusTopology(), 64)
        assert out.bandwidth_gbs == FUGAKU.interconnect.bandwidth_gbs
        assert out.latency_us > FUGAKU.interconnect.latency_us


class TestTeamPolicy:
    def test_flatten(self):
        policy = TeamPolicy(league_size=10, team_size=8, work_per_team=500.0)
        flat = policy.flatten()
        assert flat.size == 10
        assert flat.work_per_item == 500.0

    def test_dispatch_runs_once_per_league_member(self):
        space = SerialSpace()
        hits = []
        policy = TeamPolicy(league_size=6, team_size=4)

        def functor(begin, end):
            hits.extend(range(begin, end))

        parallel_for(space, policy, functor)
        assert sorted(hits) == list(range(6))

    def test_validation(self):
        with pytest.raises(ValueError):
            TeamPolicy(league_size=-1)
        with pytest.raises(ValueError):
            TeamPolicy(league_size=1, team_size=0)

    def test_hpx_space_splits_league(self):
        from repro.amt.locality import Runtime
        from repro.kokkos import HpxSpace

        rt = Runtime(1, 4)
        space = HpxSpace(rt.here(), tasks_per_kernel=3)
        done = []
        parallel_for(space, TeamPolicy(league_size=9, work_per_team=1e3),
                     lambda b, e: done.append((b, e)))
        assert sum(e - b for b, e in done) == 9
        assert space.stats.tasks == 3
