"""The coalescing layer: bundle plans, closed-form message counts, and
bit-identical physics with coalescing on or off — including under faults.

The load-bearing claims, in test form:

* a bundle-planned ghost exchange writes the exact bits of the reference
  ``fill_all_ghosts`` pass;
* a coalesced step sends exactly ``len(_RK3_STAGES)`` payload messages per
  remote neighbor-locality pair — O(neighbor localities), not
  O(leaf faces) — and the pair set matches the closed form from the mesh
  topology alone, across arbitrary regrid sequences (hypothesis);
* the driver's state is ``np.array_equal``-identical with coalescing on
  and off, with and without seeded network faults;
* a retransmitted bundle dedups as a unit: duplicate deliveries never
  double-apply.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.comms import (
    GhostBundlePlan,
    adopt_arena,
    build_bundle_plan,
    neighbor_locality_pairs,
)
from repro.core.distributed import DistributedHydroDriver
from repro.distsim import RunConfig
from repro.hydro import HydroIntegrator, IdealGasEOS
from repro.hydro.integrator import _RK3_STAGES
from repro.machines import FUGAKU
from repro.octree import AmrMesh, Field
from repro.octree.ghost import fill_all_ghosts
from repro.octree.partition import sfc_partition
from repro.resilience import FaultSpec

from tests.test_distributed_driver import build_mesh, clone


def seeded_fields(mesh, seed=0):
    """Distinct, reproducible values in every cell of every field."""
    rng = np.random.default_rng(seed)
    for leaf in mesh.leaves():
        interior = leaf.subgrid.interior_view()
        rho = 1.0 + rng.random(interior.shape[1:])
        eint = 2.0 + rng.random(interior.shape[1:])
        leaf.subgrid.set_interior(Field.RHO, rho)
        leaf.subgrid.set_interior(Field.SX, 0.1 * rng.random(rho.shape) * rho)
        leaf.subgrid.set_interior(Field.EGAS, eint)
        leaf.subgrid.set_interior(Field.TAU, eint ** (3.0 / 5.0))
    mesh.restrict_all()


class TestBundlePlanEquivalence:
    @pytest.mark.parametrize("adaptive", [False, True])
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_apply_matches_reference_fill(self, adaptive, nodes):
        mesh_a, _ = build_mesh(adaptive=adaptive)
        mesh_b = clone(mesh_a)
        sfc_partition(mesh_a, nodes)
        sfc_partition(mesh_b, nodes)

        fill_all_ghosts(mesh_a)

        arena, offsets = adopt_arena(mesh_b)
        plan = build_bundle_plan(mesh_b, offsets)
        for bundle in plan.bundles.values():
            bundle.apply(arena)

        for key in mesh_a.leaf_keys():
            assert np.array_equal(
                mesh_b.nodes[key].subgrid.data, mesh_a.nodes[key].subgrid.data
            )

    def test_arena_adoption_preserves_values(self):
        mesh, _ = build_mesh(adaptive=True)
        before = {
            key: mesh.nodes[key].subgrid.data.copy()
            for key in mesh.leaf_keys()
        }
        arena, offsets = adopt_arena(mesh)
        for key, data in before.items():
            assert np.array_equal(mesh.nodes[key].subgrid.data, data)
        # The rebinding is real: leaf storage aliases the arena.
        leaf = mesh.nodes[next(iter(offsets))]
        assert leaf.subgrid.data.base is arena

    def test_plan_matches_topology_version(self):
        mesh, _ = build_mesh()
        arena, offsets = adopt_arena(mesh)
        plan = build_bundle_plan(mesh, offsets)
        assert plan.matches(mesh)
        mesh.refine((1, 1))
        assert not plan.matches(mesh)


class TestClosedFormMessageCounts:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        picks=st.lists(st.integers(min_value=0, max_value=63), max_size=3),
        nodes=st.integers(min_value=2, max_value=5),
    )
    def test_remote_pairs_match_closed_form_across_regrids(self, picks, nodes):
        """Whatever the regrid sequence, the plan's remote pair set equals
        the closed form walked from the topology alone, and the per-step
        payload message count is stages x pairs."""
        mesh, eos = build_mesh()
        for pick in picks:  # a regrid sequence: refine some leaf each time
            leaves = [k for k in mesh.leaf_keys() if k[0] < 3]
            if not leaves:
                break
            mesh.refine(leaves[pick % len(leaves)])
        seeded_fields(mesh)
        driver = DistributedHydroDriver(
            mesh, eos, config=RunConfig(machine=FUGAKU, nodes=nodes)
        )
        result = driver.step(1e-4)
        pairs = neighbor_locality_pairs(mesh)
        assert driver._bundle_plan.remote_pairs == pairs
        assert result.payload_messages == len(_RK3_STAGES) * len(pairs)

    def test_coalescing_cuts_messages_to_pair_count(self):
        """O(leaf faces) -> O(neighbor localities): the headline claim."""
        mesh_a, eos = build_mesh(adaptive=True)
        mesh_b = clone(mesh_a)
        on = DistributedHydroDriver(
            mesh_a, eos,
            config=RunConfig(machine=FUGAKU, nodes=4, coalesce=True),
        ).step(1e-3)
        off = DistributedHydroDriver(
            mesh_b, eos,
            config=RunConfig(machine=FUGAKU, nodes=4, coalesce=False),
        ).step(1e-3)
        pairs = neighbor_locality_pairs(mesh_a)
        assert on.payload_messages == len(_RK3_STAGES) * len(pairs)
        assert off.payload_messages > 3 * on.payload_messages

    def test_acks_counted_as_control_not_payload(self):
        mesh, eos = build_mesh()
        driver = DistributedHydroDriver(
            mesh, eos, recovery=True,
            config=RunConfig(machine=FUGAKU, nodes=4),
        )
        result = driver.step(1e-3)
        assert result.payload_messages > 0
        assert result.control_messages >= result.payload_messages  # 1 ack each
        assert result.messages == result.payload_messages + result.control_messages


class TestBitIdenticalOnOff:
    def _run(self, coalesce, faults=None, recovery=None, steps=2):
        mesh, eos = build_mesh(adaptive=True)
        seeded_fields(mesh, seed=7)
        driver = DistributedHydroDriver(
            mesh, eos, faults=faults, recovery=recovery,
            config=RunConfig(machine=FUGAKU, nodes=4, coalesce=coalesce),
        )
        for _ in range(steps):
            driver.step(5e-4)
        return {k: mesh.nodes[k].subgrid.data.copy() for k in mesh.leaf_keys()}

    def test_on_off_identical_clean(self):
        on = self._run(coalesce=True)
        off = self._run(coalesce=False)
        assert on.keys() == off.keys()
        for key in on:
            assert np.array_equal(on[key], off[key])

    def test_on_off_identical_under_faults_with_recovery(self):
        faults = FaultSpec(drop_rate=0.1, duplicate_rate=0.1, seed=3)
        clean = self._run(coalesce=True)
        on = self._run(coalesce=True, faults=faults, recovery=True)
        off = self._run(coalesce=False, faults=faults, recovery=True)
        for key in clean:
            assert np.array_equal(on[key], clean[key])
            assert np.array_equal(off[key], clean[key])


class TestBundleUnitDedup:
    def test_duplicated_bundles_never_double_apply(self):
        """A retransmitted/duplicated bundle is deduped as a unit: heavy
        wire duplication leaves the state bit-identical to a clean run."""
        faults = FaultSpec(duplicate_rate=0.5, seed=11)
        mesh_a, eos = build_mesh(adaptive=True)
        mesh_b = clone(mesh_a)
        config = RunConfig(machine=FUGAKU, nodes=4, coalesce=True)
        clean = DistributedHydroDriver(mesh_a, eos, config=config)
        noisy = DistributedHydroDriver(
            mesh_b, eos, config=config, faults=faults, recovery=True
        )
        suppressed = 0
        for _ in range(2):
            clean.step(5e-4)
            suppressed += noisy.step(5e-4).duplicates_suppressed
        assert suppressed > 0  # the fault schedule actually bit
        for key in mesh_a.leaf_keys():
            assert np.array_equal(
                mesh_b.nodes[key].subgrid.data, mesh_a.nodes[key].subgrid.data
            )


class TestBundlePlanShape:
    def test_bundle_count_is_pair_count(self):
        mesh, _ = build_mesh(adaptive=True)
        sfc_partition(mesh, 4)
        arena, offsets = adopt_arena(mesh)
        plan = build_bundle_plan(mesh, offsets)
        assert isinstance(plan, GhostBundlePlan)
        remote = [b for b in plan.bundles.values() if not b.local]
        assert len(remote) == len(neighbor_locality_pairs(mesh))

    def test_payload_bytes_accounted(self):
        mesh, _ = build_mesh()
        sfc_partition(mesh, 4)
        arena, offsets = adopt_arena(mesh)
        plan = build_bundle_plan(mesh, offsets)
        for bundle in plan.bundles.values():
            assert bundle.nbytes == bundle.payload.size * 8
            assert bundle.n_faces == len(bundle.faces)
        assert plan.remote_payload_bytes == sum(
            b.nbytes for b in plan.bundles.values() if not b.local
        )
