"""SCF: Lane-Emden, polytropes, Poisson solver, Roche geometry."""

import numpy as np
import pytest

from repro.scf import (
    BinarySCF,
    LaneEmdenSolution,
    PolytropeModel,
    SingleStarSCF,
    keplerian_omega,
    lagrange_l1,
    lane_emden,
    roche_lobe_radius,
)
from repro.scf.poisson import FftPoissonSolver


class TestLaneEmden:
    def test_n0_analytic(self):
        # theta = 1 - xi^2 / 6, surface at sqrt(6).
        sol = lane_emden(0.0)
        assert sol.xi1 == pytest.approx(np.sqrt(6.0), rel=1e-6)
        xi = np.array([0.5, 1.0, 2.0])
        np.testing.assert_allclose(sol.theta_of(xi), 1 - xi**2 / 6, atol=1e-6)

    def test_n1_analytic(self):
        # theta = sin(xi)/xi, surface at pi.
        sol = lane_emden(1.0)
        assert sol.xi1 == pytest.approx(np.pi, rel=1e-8)
        xi = np.array([0.5, 1.5, 3.0])
        np.testing.assert_allclose(sol.theta_of(xi), np.sin(xi) / xi, atol=1e-6)

    def test_n15_surface(self):
        # Standard tabulated value: xi_1 = 3.65375 for n = 1.5.
        sol = lane_emden(1.5)
        assert sol.xi1 == pytest.approx(3.65375, rel=1e-4)
        assert sol.mass_coefficient == pytest.approx(2.71406, rel=1e-3)

    def test_n3_surface(self):
        sol = lane_emden(3.0)
        assert sol.xi1 == pytest.approx(6.89685, rel=1e-4)

    def test_theta_outside_surface_zero(self):
        sol = lane_emden(1.5)
        assert sol.theta_of(np.array([sol.xi1 * 2])) == 0.0

    def test_invalid_indices(self):
        with pytest.raises(ValueError):
            lane_emden(-1.0)
        with pytest.raises(ValueError):
            lane_emden(5.0)


class TestPolytrope:
    def test_mass_integrates_to_target(self):
        model = PolytropeModel(mass=1.0, radius=0.5, n=1.5)
        assert model.integrated_mass() == pytest.approx(1.0, rel=1e-3)

    def test_density_profile_monotone(self):
        model = PolytropeModel(mass=1.0, radius=0.5, n=1.5)
        r = np.linspace(0, 0.5, 50)
        rho = model.density(r)
        assert rho[0] == pytest.approx(model.rho_c)
        assert (np.diff(rho) <= 1e-12).all()
        assert rho[-1] == pytest.approx(0.0, abs=1e-8)

    def test_central_density_formula(self):
        model = PolytropeModel(mass=2.0, radius=1.0, n=1.0)
        le = model.lane_emden_solution
        expected = 2.0 * le.xi1 / (4 * np.pi * abs(le.dtheta_dxi_at_xi1))
        assert model.rho_c == pytest.approx(expected)

    def test_hydrostatic_consistency(self):
        """dP/dr = -G m(r) rho / r^2 at a few radii."""
        model = PolytropeModel(mass=1.0, radius=0.5, n=1.5)
        r = np.linspace(1e-4, 0.45, 400)
        p = model.pressure(r)
        rho = model.density(r)
        dp_dr = np.gradient(p, r)
        # enclosed mass by cumulative trapezoid
        m_enc = 4 * np.pi * np.concatenate(
            [[0.0], np.cumsum(0.5 * (rho[1:] * r[1:] ** 2 + rho[:-1] * r[:-1] ** 2) * np.diff(r))]
        )
        mid = slice(40, 360)
        np.testing.assert_allclose(
            dp_dr[mid], -m_enc[mid] * rho[mid] / r[mid] ** 2, rtol=0.05
        )


class TestPoisson:
    def test_uniform_sphere(self):
        n, box = 48, 2.0
        solver = FftPoissonSolver(n, box / n)
        c = -box / 2 + box / n * (np.arange(n) + 0.5)
        x, y, z = np.meshgrid(c, c, c, indexing="ij")
        r = np.sqrt(x**2 + y**2 + z**2)
        radius = 0.5
        rho = np.where(r < radius, 1.0, 0.0)
        mass = rho.sum() * (box / n) ** 3
        phi = solver.solve(rho)
        exact = np.where(
            r < radius,
            -mass * (3 * radius**2 - r**2) / (2 * radius**3),
            -mass / np.maximum(r, 1e-10),
        )
        assert np.abs(phi - exact).max() / np.abs(exact).max() < 5e-3

    def test_point_mass_far_field(self):
        n, box = 32, 2.0
        solver = FftPoissonSolver(n, box / n)
        rho = np.zeros((n, n, n))
        rho[n // 2, n // 2, n // 2] = 1.0
        mass = (box / n) ** 3
        phi = solver.solve(rho)
        # Far corner: potential ~ -m/r.
        c = -box / 2 + box / n * (np.arange(n) + 0.5)
        r_corner = np.sqrt(3) * abs(c[0] - c[n // 2])
        assert phi[0, 0, 0] == pytest.approx(-mass / r_corner, rel=1e-2)

    def test_linearity(self):
        n = 16
        solver = FftPoissonSolver(n, 0.1)
        rng = np.random.default_rng(0)
        a, b = rng.random((n, n, n)), rng.random((n, n, n))
        np.testing.assert_allclose(
            solver.solve(a + 2 * b), solver.solve(a) + 2 * solver.solve(b), atol=1e-10
        )

    def test_gradient_points_inward(self):
        n, box = 32, 2.0
        solver = FftPoissonSolver(n, box / n)
        c = -box / 2 + box / n * (np.arange(n) + 0.5)
        x, y, z = np.meshgrid(c, c, c, indexing="ij")
        rho = np.where(np.sqrt(x**2 + y**2 + z**2) < 0.4, 1.0, 0.0)
        acc = solver.gradient(solver.solve(rho))
        # At +x edge, acceleration points in -x.
        assert acc[0][-1, n // 2, n // 2] < 0

    def test_shape_validation(self):
        solver = FftPoissonSolver(16, 0.1)
        with pytest.raises(ValueError):
            solver.solve(np.zeros((8, 8, 8)))

    def test_tiny_grid_rejected(self):
        with pytest.raises(ValueError):
            FftPoissonSolver(2, 0.1)


class TestRoche:
    def test_keplerian(self):
        assert keplerian_omega(1.0, 0.0 + 1e-12, 1.0) == pytest.approx(1.0, rel=1e-6)
        assert keplerian_omega(1.0, 1.0, 1.0) == pytest.approx(np.sqrt(2.0))

    def test_keplerian_validation(self):
        with pytest.raises(ValueError):
            keplerian_omega(1.0, 1.0, 0.0)

    def test_eggleton_equal_mass(self):
        # q = 1: R_L / a = 0.379 (Eggleton 1983).
        assert roche_lobe_radius(1.0) == pytest.approx(0.379, rel=2e-3)

    def test_eggleton_monotone_in_q(self):
        qs = [0.1, 0.5, 1.0, 2.0, 10.0]
        radii = [roche_lobe_radius(q) for q in qs]
        assert radii == sorted(radii)

    def test_l1_equal_mass_at_midpoint(self):
        assert lagrange_l1(1.0, 1.0, 1.0) == pytest.approx(0.5, rel=1e-10)

    def test_l1_shifts_towards_lighter_star(self):
        assert lagrange_l1(1.0, 0.5, 1.0) > 0.5

    def test_l1_validation(self):
        with pytest.raises(ValueError):
            lagrange_l1(0.0, 1.0)


@pytest.mark.slow
class TestSingleStarScf:
    def test_nonrotating_sphere_matches_lane_emden(self):
        scf = SingleStarSCF(rho_max=1.0, r_equator=0.5, r_pole=0.5, poly_n=1.5, n=48)
        result = scf.run()
        assert result.converged
        assert result.omega == pytest.approx(0.0, abs=1e-8)
        # Radial density profile ~ Lane-Emden theta^1.5 (shapes compared
        # after normalising both to their maxima: the 48^3 SCF grid puts
        # its density peak half a cell off r = 0, shifting the scale).
        model = PolytropeModel(mass=result.star_masses[0], radius=0.5, n=1.5)
        c = -1.0 + (2.0 / 48) * (np.arange(48) + 0.5)
        j = 24
        profile = result.rho[:, j, j]
        r = np.abs(c)
        expected = model.density(r)
        inside = r < 0.4
        np.testing.assert_allclose(
            profile[inside] / profile.max(),
            expected[inside] / expected.max(),
            atol=0.06,
        )

    def test_rotating_star_spins_and_flattens(self):
        scf = SingleStarSCF(rho_max=1.0, r_equator=0.5, r_pole=0.4, poly_n=1.5, n=48)
        result = scf.run()
        assert result.converged
        assert result.omega > 0.1
        j = 24
        # Oblate: equatorial extent exceeds polar extent.
        eq_extent = (result.rho[:, j, j] > 1e-4).sum()
        pol_extent = (result.rho[j, j, :] > 1e-4).sum()
        assert eq_extent > pol_extent

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SingleStarSCF(r_equator=0.3, r_pole=0.4)


@pytest.mark.slow
class TestBinaryScf:
    def test_detached_binary_physical(self):
        scf = BinarySCF(
            x_a=-0.72, x_b=-0.26, x_c=0.42, rho_max_1=1.0, rho_max_2=0.8, n=32
        )
        result = scf.run(max_iter=150)
        m1, m2 = result.star_masses
        assert m1 > 0 and m2 > 0
        q = m2 / m1
        assert 0.5 < q < 0.9  # tuned for ~0.7
        # Omega close to the Keplerian value of the point-mass binary.
        j = 16
        prof = result.rho[:, j, j]
        axis = -1.0 + (2.0 / 32) * (np.arange(32) + 0.5)
        left = np.where(axis < result.split_x, prof, 0)
        right = np.where(axis >= result.split_x, prof, 0)
        sep = axis[np.argmax(right)] - axis[np.argmax(left)]
        kepler = keplerian_omega(m1, m2, sep)
        assert result.omega == pytest.approx(kepler, rel=0.25)

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BinarySCF(x_a=0.5, x_b=-0.1, x_c=0.6)

    def test_com_tracked(self):
        scf = BinarySCF(
            x_a=-0.72, x_b=-0.26, x_c=0.42, rho_max_1=1.0, rho_max_2=0.8, n=32
        )
        result = scf.run(max_iter=150)
        # More mass on the left: COM is at negative x.
        assert result.x_com < 0.0
