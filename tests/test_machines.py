"""Machine models: specs, power, software manifest."""

import pytest

from repro.machines import (
    FUGAKU,
    MACHINES,
    OOKAMI,
    PERLMUTTER,
    PIZ_DAINT,
    SUMMIT,
    PowerModel,
    format_manifest,
    software_manifest,
)


class TestNodeSpecs:
    def test_all_machines_registered(self):
        assert set(MACHINES) == {"Fugaku", "Ookami", "Summit", "Piz Daint", "Perlmutter"}

    def test_a64fx_peak(self):
        # 48 cores x 32 DP flops/cycle x 1.8 GHz = 2.765 TF.
        assert FUGAKU.node.peak_flops() == pytest.approx(2.7648e12)
        assert FUGAKU.node.peak_flops(boost=True) == pytest.approx(3.3792e12)

    def test_fugaku_memory_is_papers_28gb(self):
        assert FUGAKU.node.memory_gb == 28.0

    def test_ookami_same_cpu_different_fabric(self):
        assert OOKAMI.node.cores == FUGAKU.node.cores
        assert OOKAMI.interconnect.name != FUGAKU.interconnect.name

    def test_sve_speedup_within_paper_window(self):
        ratio = FUGAKU.node.sustained_cpu_flops(simd=True) / FUGAKU.node.sustained_cpu_flops(simd=False)
        assert 2.0 <= ratio <= 3.0

    def test_gpu_counts(self):
        assert len(SUMMIT.node.gpus) == 6
        assert len(PIZ_DAINT.node.gpus) == 1
        assert len(PERLMUTTER.node.gpus) == 4
        assert not FUGAKU.node.gpus

    def test_gpu_sustained_ordering(self):
        # Calibration invariant behind Fig. 4: Summit node >> Piz Daint node.
        assert SUMMIT.node.sustained_gpu_flops() > 5 * PIZ_DAINT.node.sustained_gpu_flops()

    def test_fig5_calibration_invariants(self):
        # Fugaku scalar node slightly below CPU-only Perlmutter node.
        fugaku = FUGAKU.node.sustained_cpu_flops(simd=False)
        perl = PERLMUTTER.node.sustained_cpu_flops(simd=False)
        assert 0.5 < fugaku / perl < 1.0
        # 4x A100 roughly two orders over the CPU-only node.
        assert PERLMUTTER.node.sustained_gpu_flops() / perl > 50


class TestPower:
    def test_idle_floor(self):
        p = PowerModel(idle_w=35, peak_w=110, reference_freq_ghz=1.8)
        assert p.node_power(0.0) == 35.0

    def test_peak_at_full_utilization(self):
        p = PowerModel(idle_w=35, peak_w=110, reference_freq_ghz=1.8)
        assert p.node_power(1.0) == 110.0

    def test_frequency_cubed(self):
        p = PowerModel(idle_w=0, peak_w=100, reference_freq_ghz=2.0)
        assert p.node_power(1.0, freq_ghz=1.0) == pytest.approx(12.5)

    def test_job_power_scales_with_nodes(self):
        p = FUGAKU.power
        assert p.job_power(1024, 0.9) == pytest.approx(1024 * p.node_power(0.9))

    def test_energy(self):
        p = PowerModel(idle_w=50, peak_w=50, reference_freq_ghz=1.0)
        assert p.energy_joules(2, 0.5, 10.0) == pytest.approx(1000.0)

    def test_validation(self):
        p = FUGAKU.power
        with pytest.raises(ValueError):
            p.node_power(1.5)
        with pytest.raises(ValueError):
            p.job_power(0, 0.5)

    def test_boost_increases_power(self):
        p = FUGAKU.power
        assert p.node_power(0.9, freq_ghz=2.2) > p.node_power(0.9, freq_ghz=1.8)


class TestManifest:
    def test_table1_key_versions(self):
        fugaku = software_manifest("Fugaku")
        assert fugaku["gcc"] == "11.2.0"
        assert fugaku["hpx"] == "1.7.1"
        assert fugaku["boost"] == "1.79.0"
        assert fugaku["octo-tiger"] == "6848ea1"

    def test_ookami_column(self):
        ookami = software_manifest("Ookami")
        assert ookami["gcc"] == "12.1.0"
        assert ookami["octo-tiger"] == "8e4239411cfc36e9"

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            software_manifest("Frontier")

    def test_every_component_versioned(self):
        for machine in ("Fugaku", "Ookami"):
            for component, version in software_manifest(machine).items():
                assert version, component

    def test_format_contains_all_components(self):
        table = format_manifest()
        for component in software_manifest("Fugaku"):
            assert component in table
