"""The futurized interior/halo overlap schedule (ISSUE 10).

Covers the tentpole contracts and their satellites:

* the region split is an exact partition — hypothesis sweep over grid
  sizes asserting cover, disjointness, and halo width equal to the
  stencil radius, plus the ``verify_region_split`` wiring that makes the
  executor refuse to schedule an unverified split;
* overlap is **bit-identical** to the BSP barrier schedule on both
  wires, with reflux, with gravity + rotation, across regrids, and
  under seeded faults + checkpoint recovery (the DES backend as oracle
  throughout, via ``crosscheck_hydro``);
* ``ParallelEngine.round_async`` / ``WorkerLink`` — mid-round notes,
  parent routing, and barrier-equivalent failure semantics;
* the shm race detector's message-grained ``ordered_phases`` edges:
  the fused-update conflict is real without the ``ghosts``→``go`` edge
  and sanctioned with it, and the edge excuses *only* that phase pair;
* the plan cache carries the split (format v2) and a split-less payload
  still cold-computes it.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.amt.parallel import ParallelEngine, WorkerError
from repro.analysis.planverify import (
    PlanVerificationError,
    verify_region_split,
)
from repro.analysis.shmrace import (
    MODE_READ,
    MODE_WRITE,
    PHASE_COMPUTE,
    PHASE_EXCHANGE,
    PHASE_UPDATE,
    REGION_INTERIOR,
    SEG_FIELDS,
    ShmEventLog,
    ShmRaceDetector,
    slot_range_rows,
)
from repro.core.crosscheck import conserved_sums, crosscheck_hydro
from repro.core.plancache import CACHE_FORMAT_VERSION, PlanCache
from repro.hydro.plan import (
    STENCIL_RADIUS,
    RegionSplit,
    build_hydro_plan,
    compute_region_split,
)
from repro.hydro.process_backend import ProcessHydroExecutor
from tests.test_hydro_plan import (
    _apply_mutation,
    _mutation_sequences,
    assert_meshes_identical,
    fake_gravity,
    make_state_mesh,
)

pytestmark = pytest.mark.timeout(300)


# ---------------------------------------------------------------------------
# Satellite 3: the split partition is exact, and the executor refuses an
# unverified one.
# ---------------------------------------------------------------------------
class TestRegionSplitPartition:
    @given(n=st.integers(min_value=1, max_value=24))
    @settings(max_examples=24, deadline=None)
    def test_split_is_exact_partition(self, n):
        split = compute_region_split(n)
        count = np.zeros((n, n, n), dtype=np.int64)
        for x0, x1, y0, y1, z0, z1 in split.boxes:
            count[x0:x1, y0:y1, z0:z1] += 1
        assert (count == 1).all()  # cover and disjoint in one shot
        assert split.width == STENCIL_RADIUS
        if split.has_interior:
            w = split.width
            assert split.interior_box == (w, n - w, w, n - w, w, n - w)
        else:
            assert n <= 2 * split.width

    @given(n=st.integers(min_value=1, max_value=16))
    @settings(max_examples=16, deadline=None)
    def test_verifier_accepts_canonical_split(self, n):
        split = compute_region_split(n)
        assert verify_region_split(split, n, ghost=STENCIL_RADIUS) == []

    def test_payload_round_trip(self):
        split = compute_region_split(8)
        assert RegionSplit.from_payload(split.to_payload()) == split

    def test_interior_cells_never_reach_ghosts(self):
        split = compute_region_split(12)
        x0, x1, y0, y1, z0, z1 = split.interior_box
        w = split.width
        for lo, hi in ((x0, x1), (y0, y1), (z0, z1)):
            assert lo - w >= 0 and hi + w <= 12

    @pytest.mark.parametrize(
        "corrupt, check",
        [
            # Overlapping halo slab: double-written dudt cells.
            (lambda s: RegionSplit(
                s.n, s.width, s.interior_box,
                s.halo_boxes[:-1] + ((0, s.n, 0, s.n, 0, s.n),),
            ), "split-disjoint"),
            # Shrunken interior: uncovered cells.
            (lambda s: RegionSplit(
                s.n, s.width,
                (s.width + 1, s.n - s.width, s.width, s.n - s.width,
                 s.width, s.n - s.width),
                s.halo_boxes,
            ), "split-cover"),
            # Wrong halo width: an interior stencil would read a ghost.
            (lambda s: RegionSplit(
                s.n, 1, (1, s.n - 1, 1, s.n - 1, 1, s.n - 1),
                ((0, 1, 0, s.n, 0, s.n), (s.n - 1, s.n, 0, s.n, 0, s.n),
                 (1, s.n - 1, 0, 1, 0, s.n), (1, s.n - 1, s.n - 1, s.n, 0, s.n),
                 (1, s.n - 1, 1, s.n - 1, 0, 1),
                 (1, s.n - 1, 1, s.n - 1, s.n - 1, s.n)),
            ), "split-width"),
        ],
    )
    def test_corrupted_split_flagged(self, corrupt, check):
        split = compute_region_split(8)
        bad = corrupt(split)
        found = {v.check for v in verify_region_split(bad, 8, ghost=2)}
        assert check in found

    def test_executor_refuses_unverified_split(self):
        """Planverify wiring: the overlap schedule will not run on a split
        that has not passed ``verify_region_split``."""
        mesh, eos = make_state_mesh(levels=1)
        ex = ProcessHydroExecutor(mesh, eos=eos, nprocs=2, overlap=True)
        try:
            ex.ensure()
            assert ex._split_verified
            good = ex.split
            ex.split = RegionSplit(
                good.n, good.width, good.interior_box,
                good.halo_boxes + ((0, good.n, 0, good.n, 0, good.n),),
            )
            ex._split_verified = False
            with pytest.raises(PlanVerificationError, match="split-disjoint"):
                ex.step(1e-4)
        finally:
            ex.close()


# ---------------------------------------------------------------------------
# Tentpole: overlap is bit-identical to BSP (DES oracle via crosscheck).
# ---------------------------------------------------------------------------
class TestOverlapBitIdentity:
    @pytest.mark.parametrize("wire", ["shm", "pipe"])
    def test_refined_mesh_with_reflux(self, wire):
        mesh, eos = make_state_mesh(levels=1, refine_keys=(0, 3))
        crosscheck_hydro(mesh, steps=2, nprocs=2, eos=eos, wire=wire,
                         overlap=True)

    @pytest.mark.parametrize("wire", ["shm", "pipe"])
    def test_uniform_mesh_fused_update(self, wire):
        # No coarse-fine faces -> no reflux -> the fused-update epoch and
        # its ghosts->go handshake are exercised on every stage.
        mesh, eos = make_state_mesh(levels=1)
        crosscheck_hydro(mesh, steps=2, nprocs=2, eos=eos, wire=wire,
                         overlap=True)

    def test_gravity_rotation_every_stage_fallback(self):
        # gravity_every_stage rewrites accelerations mid-stage; stages 2-3
        # fall back to the barrier schedule while stage 1 overlaps.  The
        # mix must still be bit-identical.
        mesh, eos = make_state_mesh(levels=1, refine_keys=(2,))
        crosscheck_hydro(
            mesh, steps=2, nprocs=2, eos=eos, omega=0.4,
            gravity=lambda: fake_gravity, gravity_every_stage=True,
            overlap=True,
        )

    @given(ops=_mutation_sequences())
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_overlap_tracks_regrids(self, ops):
        # The split survives delta replans; regrids must not desync the
        # overlap schedule from the serial oracle.  ``mutate`` is called
        # once per mesh per step, so it must be a pure function of
        # ``step_index`` to keep the two meshes in lockstep.
        def mutate(mesh, step_index):
            if 1 <= step_index <= len(ops):
                op, pick = ops[step_index - 1]
                _apply_mutation(mesh, op, pick)

        mesh, eos = make_state_mesh(levels=1, n=4)
        crosscheck_hydro(
            mesh, steps=min(len(ops) + 1, 3), nprocs=2, eos=eos,
            overlap=True, mutate=mutate,
        )

    def test_fmm_overlap_bit_identical(self):
        # Same shape for the FMM fan-out: every (nprocs+1)-th M2L shard
        # stays parent-local and is computed inside the ordered drain
        # loop; the accumulation order -- hence the bits -- is unchanged.
        from repro.gravity.fmm import FmmSolver

        mesh, _ = make_state_mesh(levels=1, refine_keys=(2,))
        des = FmmSolver(empty_mass_threshold=1e-12)
        par = FmmSolver(
            empty_mass_threshold=1e-12, backend="process", nprocs=2,
            overlap=True,
        )
        try:
            r_des = des.solve(mesh)
            r_par = par.solve(mesh)
        finally:
            par.close()
        for key in r_des.accel:
            assert np.array_equal(r_des.accel[key], r_par.accel[key])
            assert np.array_equal(r_des.phi[key], r_par.phi[key])

    def test_overlap_attribution_populated(self):
        mesh, eos = make_state_mesh(levels=1)
        ex = ProcessHydroExecutor(mesh, eos=eos, nprocs=2, overlap=True)
        try:
            ex.step(1e-4)
            assert ex.compute_s > 0.0
            assert ex.exchange_wait_s >= 0.0
        finally:
            ex.close()


class TestOverlapUnderFaults:
    def test_crash_rollback_replay_matches_bsp(self):
        """Seeded crash + checkpoint recovery: the overlap run rolls back
        and replays to the same bits as the barrier run."""
        from repro.core.driver import OctoTigerSim
        from repro.resilience.faults import FaultSpec
        from repro.scenarios.blast import sedov_blast

        def run(overlap):
            scenario = sedov_blast(levels=1)
            sim = OctoTigerSim(
                scenario.mesh, eos=scenario.eos, nodes=2,
                backend="process", nprocs=2, overlap=overlap,
                faults=FaultSpec(crash_locality=1, crash_step=1, seed=0),
                checkpoint_every=1,
            )
            try:
                sim.run(2)
            finally:
                sim.close()
            assert sim.counters.total("resilience.rollbacks") >= 1
            return conserved_sums(sim.mesh), sim.mesh

        sums_bsp, mesh_bsp = run(overlap=False)
        sums_ovl, mesh_ovl = run(overlap=True)
        assert np.array_equal(sums_bsp, sums_ovl)
        assert_meshes_identical(mesh_bsp, mesh_ovl)


# ---------------------------------------------------------------------------
# round_async / WorkerLink: the dependency-grained round primitive.
# ---------------------------------------------------------------------------
def _link_factory(rank, registry, link):
    def handler(command):
        if command == "relay":
            # Every rank tells the parent it is ready, computes "interior
            # work", then waits for the parent's routed go-ahead.
            link.note("ready", rank)
            token = link.wait("go")
            return (rank, token)
        if command == "boom" and rank == 1:
            raise RuntimeError("async boom")
        return command

    return handler


class TestRoundAsync:
    def test_note_route_round_trip(self):
        got = []

        def on_note(rank, tag, payload):
            got.append((rank, tag, payload))
            if len(got) == 3:  # all ranks ready -> broadcast the go-ahead
                return [(r, "go", "token") for r in range(3)]
            return None

        with ParallelEngine(3) as engine:
            engine.start(_link_factory)
            out = engine.round_async(("relay"), on_note=on_note)
        assert out == [(0, "token"), (1, "token"), (2, "token")]
        assert {r for r, tag, _ in got} == {0, 1, 2}
        assert all(tag == "ready" for _, tag, _ in got)

    def test_async_round_without_notes_matches_round(self):
        with ParallelEngine(2) as engine:
            engine.start(_link_factory)
            assert engine.round_async({"x": 1}) == [{"x": 1}] * 2
            # The pool is reusable for ordinary barrier rounds afterwards.
            assert engine.round({"y": 2}) == [{"y": 2}] * 2

    def test_worker_error_propagates_from_async_round(self):
        with ParallelEngine(2) as engine:
            engine.start(_link_factory)
            with pytest.raises(WorkerError, match="async boom"):
                engine.round_async("boom")


# ---------------------------------------------------------------------------
# Message-grained happens-before edges in the shm race detector.
# ---------------------------------------------------------------------------
def _fused_update_events(log):
    """The overlap epoch's one real conflict: rank 0 reads rank 1's donor
    interior during the exchange while rank 1's fused update writes it."""
    log.writer(0).log(
        0,
        slot_range_rows(1, 2, MODE_READ, SEG_FIELDS, REGION_INTERIOR),
        phase=PHASE_EXCHANGE,
    )
    log.writer(1).log(
        0,
        slot_range_rows(1, 2, MODE_WRITE, SEG_FIELDS, REGION_INTERIOR),
        phase=PHASE_UPDATE,
    )


class TestOrderedPhases:
    def test_fused_update_conflict_without_edge(self):
        # Negative control: with pure barrier-epoch semantics the fused
        # update IS a race -- the detector must say so.
        with ShmEventLog(2) as log:
            _fused_update_events(log)
            det = ShmRaceDetector(log, raise_on_finding=False)
            findings = det.scan()
        assert len(findings) == 1
        assert findings[0].kind == "shm-race"

    def test_ghosts_go_edge_sanctions_it(self):
        with ShmEventLog(2) as log:
            _fused_update_events(log)
            det = ShmRaceDetector(
                log, ordered_phases={(PHASE_EXCHANGE, PHASE_UPDATE)}
            )
            assert det.scan() == []

    def test_edge_does_not_excuse_other_phases(self):
        # A compute-phase write against an exchange-phase read is NOT on
        # the sanctioned edge and must still be flagged.
        with ShmEventLog(2) as log:
            log.writer(0).log(
                0,
                slot_range_rows(1, 2, MODE_READ, SEG_FIELDS, REGION_INTERIOR),
                phase=PHASE_EXCHANGE,
            )
            log.writer(1).log(
                0,
                slot_range_rows(1, 2, MODE_WRITE, SEG_FIELDS, REGION_INTERIOR),
                phase=PHASE_COMPUTE,
            )
            det = ShmRaceDetector(
                log,
                raise_on_finding=False,
                ordered_phases={(PHASE_EXCHANGE, PHASE_UPDATE)},
            )
            assert len(det.scan()) == 1


# ---------------------------------------------------------------------------
# The plan cache carries the split (format v2).
# ---------------------------------------------------------------------------
class TestSplitInPlanCache:
    def test_cache_format_is_v2(self):
        assert CACHE_FORMAT_VERSION == 2

    def test_cache_payload_includes_split(self):
        mesh, _ = make_state_mesh(levels=1)
        plan = build_hydro_plan(mesh)
        payload = plan.cache_payload()
        for key in ("split_meta", "split_interior", "split_halos"):
            assert key in payload
        assert RegionSplit.from_payload(payload) == plan.split

    def test_cache_hit_restores_identical_split(self, tmp_path):
        mesh, _ = make_state_mesh(levels=1)
        plan = build_hydro_plan(mesh)
        cache = PlanCache(tmp_path)
        cache.store("hydro", "fp", {}, plan.cache_payload())
        hit = cache.load("hydro", "fp", {})
        assert hit is not None
        restored = build_hydro_plan(mesh, ghost_payload=dict(hit))
        assert restored.split == plan.split

    def test_split_less_payload_still_builds(self):
        # A v1-shaped payload (ghost arrays only) must cold-compute the
        # split rather than fail -- forward compatibility within v2.
        mesh, _ = make_state_mesh(levels=1)
        plan = build_hydro_plan(mesh)
        ghost_only = plan.ghosts.to_payload()
        assert "split_meta" not in ghost_only
        rebuilt = build_hydro_plan(mesh, ghost_payload=ghost_only)
        assert rebuilt.split == compute_region_split(mesh.n)
