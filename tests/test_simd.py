"""SIMD abstraction: ABIs, packs, kernel drivers — unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simd import (
    Mask,
    Pack,
    available_abis,
    get_abi,
    select,
    vector_map,
    vector_reduce,
)
from repro.simd.abi import SimdAbi

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestAbi:
    def test_registry_contents(self):
        names = available_abis()
        for expected in ("scalar", "neon128", "avx2", "avx512", "sve512"):
            assert expected in names

    def test_unknown_abi(self):
        with pytest.raises(KeyError):
            get_abi("sve1024")

    def test_lanes(self):
        assert get_abi("scalar").lanes() == 1
        assert get_abi("sve512").lanes() == 8
        assert get_abi("avx2").lanes() == 4
        assert get_abi("sve512").lanes(np.dtype(np.float32)) == 16

    def test_dtype_too_wide(self):
        tiny = SimdAbi("tiny", 32)
        with pytest.raises(ValueError):
            tiny.lanes(np.dtype(np.float64))

    def test_scalar_speedup_is_one(self):
        assert get_abi("scalar").speedup_factor() == 1.0

    def test_sve_speedup_in_paper_window(self):
        # Paper SVII-A: "a speed-up between a factor of two and three".
        assert 2.0 <= get_abi("sve512").speedup_factor() <= 3.0

    def test_duplicate_registration_rejected(self):
        from repro.simd.abi import register_abi

        with pytest.raises(ValueError):
            register_abi(SimdAbi("scalar", 0))


class TestPack:
    def test_broadcast(self):
        p = Pack.broadcast(get_abi("sve512"), 3.5)
        assert p.lanes == 8
        assert (p.values == 3.5).all()

    def test_wrong_lane_count(self):
        with pytest.raises(ValueError):
            Pack(get_abi("sve512"), np.zeros(5))

    def test_load_store_round_trip(self):
        abi = get_abi("avx2")
        buf = np.arange(8.0)
        p = Pack.load(abi, buf, offset=2)
        out = np.zeros(8)
        p.store(out, offset=4)
        assert (out[4:8] == buf[2:6]).all()

    def test_load_overrun(self):
        with pytest.raises(ValueError):
            Pack.load(get_abi("sve512"), np.zeros(4))

    def test_store_overrun(self):
        p = Pack.broadcast(get_abi("sve512"), 1.0)
        with pytest.raises(ValueError):
            p.store(np.zeros(4))

    @given(st.lists(finite, min_size=8, max_size=8), st.lists(finite, min_size=8, max_size=8))
    @settings(max_examples=50)
    def test_arithmetic_matches_numpy(self, a, b):
        abi = get_abi("sve512")
        pa, pb = Pack(abi, a), Pack(abi, b)
        np.testing.assert_allclose((pa + pb).values, np.add(a, b))
        np.testing.assert_allclose((pa - pb).values, np.subtract(a, b))
        np.testing.assert_allclose((pa * pb).values, np.multiply(a, b))

    def test_division_and_reverse_ops(self):
        abi = get_abi("avx2")
        p = Pack(abi, [1.0, 2.0, 4.0, 8.0])
        np.testing.assert_allclose((1.0 / p).values, [1.0, 0.5, 0.25, 0.125])
        np.testing.assert_allclose((10.0 - p).values, [9.0, 8.0, 6.0, 2.0])
        np.testing.assert_allclose((p / 2.0).values, [0.5, 1.0, 2.0, 4.0])

    def test_fma(self):
        abi = get_abi("avx2")
        a = Pack(abi, [1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(a.fma(2.0, 1.0).values, [3.0, 5.0, 7.0, 9.0])

    def test_sqrt_rsqrt(self):
        abi = get_abi("avx2")
        p = Pack(abi, [1.0, 4.0, 9.0, 16.0])
        np.testing.assert_allclose(p.sqrt().values, [1, 2, 3, 4])
        np.testing.assert_allclose(p.rsqrt().values, [1, 0.5, 1 / 3, 0.25])

    def test_min_max_abs_neg(self):
        abi = get_abi("avx2")
        p = Pack(abi, [-1.0, 2.0, -3.0, 4.0])
        np.testing.assert_allclose(abs(p).values, [1, 2, 3, 4])
        np.testing.assert_allclose((-p).values, [1, -2, 3, -4])
        np.testing.assert_allclose(p.min(0.0).values, [-1, 0, -3, 0])
        np.testing.assert_allclose(p.max(0.0).values, [0, 2, 0, 4])

    def test_horizontal_reductions(self):
        p = Pack(get_abi("avx2"), [1.0, 2.0, 3.0, 4.0])
        assert p.hsum() == 10.0
        assert p.hmin() == 1.0
        assert p.hmax() == 4.0

    def test_mixed_abi_rejected(self):
        a = Pack(get_abi("avx2"), np.zeros(4))
        b = Pack(get_abi("sve512"), np.zeros(8))
        with pytest.raises((TypeError, ValueError)):
            a + b


class TestMaskSelect:
    def test_comparisons(self):
        abi = get_abi("avx2")
        p = Pack(abi, [1.0, 2.0, 3.0, 4.0])
        m = p > 2.0
        assert m.count() == 2
        assert (p <= 2.0).count() == 2
        assert p.eq(3.0).count() == 1

    def test_mask_logic(self):
        abi = get_abi("avx2")
        p = Pack(abi, [1.0, 2.0, 3.0, 4.0])
        m = (p > 1.0) & (p < 4.0)
        assert m.count() == 2
        assert (~m).count() == 2
        assert (m | ~m).all()
        assert not (m & ~m).any()
        assert (m & ~m).none()

    def test_select_blends(self):
        abi = get_abi("avx2")
        p = Pack(abi, [1.0, -2.0, 3.0, -4.0])
        blended = select(p > 0.0, p, -p)
        np.testing.assert_allclose(blended.values, [1, 2, 3, 4])

    def test_select_requires_matching_abi(self):
        m = Mask(get_abi("avx2"), np.ones(4, dtype=bool))
        with pytest.raises(TypeError):
            select(m, Pack(get_abi("sve512"), np.zeros(8)), Pack(get_abi("sve512"), np.zeros(8)))


class TestVectorMap:
    @pytest.mark.parametrize("abi_name", ["scalar", "neon128", "avx2", "sve512"])
    @pytest.mark.parametrize("n", [1, 7, 8, 16, 33])
    def test_square_kernel_all_abis_all_tails(self, abi_name, n):
        abi = get_abi(abi_name)
        a = np.linspace(-3, 3, n)
        out = np.zeros(n)
        vector_map(lambda p: p * p, abi, out, a)
        np.testing.assert_allclose(out, a * a)

    def test_two_input_kernel(self):
        abi = get_abi("sve512")
        a, b = np.arange(20.0), np.arange(20.0) * 2
        out = np.zeros(20)
        vector_map(lambda x, y: x.fma(2.0, y), abi, out, a, b)
        np.testing.assert_allclose(out, 2 * a + b)

    def test_shape_mismatch(self):
        abi = get_abi("avx2")
        with pytest.raises(ValueError):
            vector_map(lambda p: p, abi, np.zeros(4), np.zeros(5))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            vector_map(lambda p: p, get_abi("avx2"), np.zeros((2, 2)), np.zeros((2, 2)))

    @given(st.lists(finite, min_size=1, max_size=40))
    @settings(max_examples=30)
    def test_abi_equivalence_property(self, values):
        """The same kernel yields identical results under every ABI."""
        a = np.array(values)
        results = []
        for abi_name in ("scalar", "sve512"):
            out = np.zeros_like(a)
            vector_map(lambda p: p * 2.0 + 1.0, get_abi(abi_name), out, a)
            results.append(out)
        np.testing.assert_array_equal(results[0], results[1])


class TestVectorReduce:
    @pytest.mark.parametrize("n", [1, 7, 8, 15, 64])
    def test_sum(self, n):
        a = np.arange(float(n))
        for abi_name in ("scalar", "sve512"):
            total = vector_reduce(lambda p: p, get_abi(abi_name), a, reducer="sum")
            assert total == pytest.approx(a.sum())

    def test_min_max_with_tail(self):
        a = np.array([5.0, -3.0, 7.0, 2.0, -8.0])
        abi = get_abi("sve512")
        assert vector_reduce(lambda p: p, abi, a, reducer="min") == -8.0
        assert vector_reduce(lambda p: p, abi, a, reducer="max") == 7.0

    def test_tail_masking_does_not_contaminate(self):
        # Tail lanes replicate the last element; the masked reduction must
        # count it exactly once.
        a = np.array([1.0, 1.0, 1.0])  # 3 elements, SVE-512 has 8 lanes
        assert vector_reduce(lambda p: p, get_abi("sve512"), a, reducer="sum") == 3.0

    def test_unknown_reducer(self):
        with pytest.raises(ValueError):
            vector_reduce(lambda p: p, get_abi("avx2"), np.zeros(4), reducer="prod")

    def test_no_inputs(self):
        with pytest.raises(ValueError):
            vector_reduce(lambda p: p, get_abi("avx2"), reducer="sum")

    def test_kernel_applied_before_reduction(self):
        a = np.arange(10.0)
        total = vector_reduce(lambda p: p * p, get_abi("sve512"), a, reducer="sum")
        assert total == pytest.approx((a * a).sum())
