"""Core driver, diagnostics, checkpointing, profiling."""

import numpy as np
import pytest

from repro.core import OctoTigerSim
from repro.core.diagnostics import (
    center_of_mass,
    conserved_totals,
    diagnostics,
    total_angular_momentum_z,
    total_energy,
)
from repro.ioutil import load_checkpoint, save_checkpoint
from repro.machines import FUGAKU, OOKAMI
from repro.octree import AmrMesh, Field
from repro.profiling import CounterRegistry, global_registry

from tests.conftest import fill_gaussian, make_uniform_mesh


class TestDiagnostics:
    def test_conserved_totals(self):
        mesh = make_uniform_mesh(levels=1)
        fill_gaussian(mesh)
        totals = conserved_totals(mesh)
        assert totals["mass"] == pytest.approx(mesh.total_mass())
        assert totals["sx"] == 0.0

    def test_angular_momentum_of_rigid_rotation(self):
        mesh = make_uniform_mesh(levels=1)
        omega = 0.5
        for leaf in mesh.leaves():
            x, y, _ = leaf.cell_centers()
            leaf.subgrid.set_interior(Field.RHO, np.ones((8, 8, 8)))
            leaf.subgrid.set_interior(Field.SX, -omega * y)
            leaf.subgrid.set_interior(Field.SY, omega * x)
        lz = total_angular_momentum_z(mesh)
        # L_z = omega * integral rho (x^2 + y^2) dV over the cube.
        dx = 2.0 / 16
        centers = -1.0 + dx * (np.arange(16) + 0.5)
        x, y, _ = np.meshgrid(centers, centers, centers, indexing="ij")
        expected = omega * ((x**2 + y**2) * dx**3).sum()
        assert lz == pytest.approx(expected, rel=1e-10)

    def test_center_of_mass_tracks_blob(self):
        mesh = make_uniform_mesh(levels=2)
        fill_gaussian(mesh, center=(0.3, 0.0, -0.2))
        com = center_of_mass(mesh)
        np.testing.assert_allclose(com, [0.3, 0.0, -0.2], atol=0.02)

    def test_total_energy_with_potential(self):
        mesh = make_uniform_mesh(levels=1)
        fill_gaussian(mesh)
        phi = {leaf.key: -np.ones((8, 8, 8)) for leaf in mesh.leaves()}
        e = total_energy(mesh, phi)
        assert e == pytest.approx(
            mesh.integral(Field.EGAS) - 0.5 * mesh.total_mass()
        )

    def test_diagnostics_bundle(self):
        mesh = make_uniform_mesh(levels=1)
        fill_gaussian(mesh)
        d = diagnostics(mesh)
        assert d.mass > 0
        assert d.energy_total == d.energy_gas  # no potential supplied
        assert d.tracer_masses.shape == (2,)


class TestCheckpoint(object):
    def test_round_trip_bit_identical(self, tmp_path):
        mesh = AmrMesh()
        mesh.refine((0, 0))
        mesh.refine((1, 0))
        fill_gaussian(mesh)
        path = save_checkpoint(mesh, tmp_path / "chk", time=1.5, step=42,
                               extra={"omega": 0.3})
        restored, meta = load_checkpoint(path)
        assert meta["time"] == 1.5
        assert meta["step"] == 42
        assert meta["extra"]["omega"] == 0.3
        assert set(restored.nodes) == set(mesh.nodes)
        for key, node in mesh.nodes.items():
            other = restored.nodes[key]
            assert other.is_leaf == node.is_leaf
            np.testing.assert_array_equal(other.subgrid.data, node.subgrid.data)

    def test_suffix_added(self, tmp_path):
        mesh = AmrMesh()
        path = save_checkpoint(mesh, tmp_path / "state")
        assert path.suffix == ".npz"

    def test_localities_preserved(self, tmp_path):
        from repro.octree.partition import sfc_partition

        mesh = make_uniform_mesh(levels=1)
        sfc_partition(mesh, 4)
        path = save_checkpoint(mesh, tmp_path / "part")
        restored, _ = load_checkpoint(path)
        for key in mesh.leaf_keys():
            assert restored.nodes[key].locality == mesh.nodes[key].locality

    def test_version_check(self, tmp_path):
        import json

        import numpy as np

        mesh = AmrMesh()
        path = save_checkpoint(mesh, tmp_path / "v")
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        meta["format_version"] = 99
        data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="format"):
            load_checkpoint(path)


class TestProfiling:
    def test_counters(self):
        reg = CounterRegistry()
        reg.sample("kernel.time", 1.0)
        reg.sample("kernel.time", 3.0)
        counter = reg.get("kernel.time")
        assert counter.count == 2
        assert counter.total == 4.0
        assert counter.mean == 2.0
        assert counter.maximum == 3.0

    def test_increment(self):
        reg = CounterRegistry()
        reg.increment("launches")
        reg.increment("launches", 5)
        assert reg.count("launches") == 2
        assert reg.total("launches") == 6.0

    def test_scoped_timer(self):
        reg = CounterRegistry()
        with reg.timer("wall"):
            sum(range(1000))
        assert reg.count("wall") == 1
        assert reg.total("wall") > 0

    def test_report_format(self):
        reg = CounterRegistry()
        reg.sample("a.b", 2.0)
        report = reg.report()
        assert "a.b" in report
        assert "count" in report

    def test_reset(self):
        reg = CounterRegistry()
        reg.sample("x", 1.0)
        reg.reset()
        assert reg.names() == []

    def test_global_registry_is_singleton(self):
        assert global_registry() is global_registry()


@pytest.mark.slow
class TestDriver:
    @pytest.fixture(scope="class")
    def scenario(self):
        from repro.scenarios import rotating_star

        return rotating_star(level=2, scf_grid=32)

    def test_step_conserves_and_times(self, scenario):
        sim = OctoTigerSim(
            scenario.mesh, eos=scenario.eos, omega=scenario.omega,
            machine=FUGAKU, nodes=4,
        )
        mass0 = scenario.mesh.total_mass()
        record = sim.step()
        assert scenario.mesh.total_mass() == pytest.approx(mass0, rel=1e-12)
        assert record.virtual_seconds > 0
        assert record.cells_per_second > 0
        assert 0 < record.utilization <= 1
        assert 35 <= record.node_power_w <= 120

    def test_counters_populated(self, scenario):
        sim = OctoTigerSim(scenario.mesh, eos=scenario.eos, machine=OOKAMI, nodes=2)
        sim.step()
        assert sim.counters.count("wall.step") == 1
        assert sim.counters.count("fmm.p2p_pairs") == 1
        assert sim.counters.total("virtual.step_seconds") > 0

    def test_partition_applied(self, scenario):
        sim = OctoTigerSim(scenario.mesh, eos=scenario.eos, nodes=4)
        localities = {leaf.locality for leaf in scenario.mesh.leaves()}
        assert localities == {0, 1, 2, 3}

    def test_gravity_free_driver(self, scenario):
        sim = OctoTigerSim(scenario.mesh, eos=scenario.eos, gravity=False, nodes=1)
        record = sim.step(dt=1e-4)
        assert record.dt == 1e-4
        assert sim.gravity_solver is None
