"""Dynamic regridding: criteria, hysteresis, conservation, balance."""

import numpy as np
import pytest

from repro.octree import (
    AmrMesh,
    CombinedCriterion,
    DensityCriterion,
    Field,
    TracerCriterion,
    regrid,
)

from tests.conftest import fill_gaussian, make_uniform_mesh


def blob_mesh():
    mesh = make_uniform_mesh(levels=1)
    fill_gaussian(mesh, center=(0.4, 0.4, 0.4), width=0.02)
    return mesh


class TestDensityCriterion:
    def test_refines_dense_leaves_only(self):
        mesh = blob_mesh()
        result = regrid(mesh, DensityCriterion(refine_above=0.5), max_level=2)
        assert result.refined > 0
        mesh.check_invariants()
        # The finest leaves cluster around the blob.
        fine = [leaf for leaf in mesh.leaves() if leaf.level == 2]
        assert fine
        for leaf in fine:
            assert np.linalg.norm(leaf.center - np.array([0.4, 0.4, 0.4])) < 0.9

    def test_conserves_mass(self):
        mesh = blob_mesh()
        mass = mesh.total_mass()
        regrid(mesh, DensityCriterion(refine_above=0.5), max_level=3)
        assert mesh.total_mass() == pytest.approx(mass, rel=1e-12)

    def test_max_level_respected(self):
        mesh = blob_mesh()
        regrid(mesh, DensityCriterion(refine_above=1e-6), max_level=2)
        assert mesh.max_level() <= 2

    def test_coarsening_after_blob_vanishes(self):
        mesh = blob_mesh()
        criterion = DensityCriterion(refine_above=0.5)
        regrid(mesh, criterion, max_level=2)
        n_fine = mesh.n_subgrids()
        # Blow the gas away: all leaves drop below the coarsen threshold.
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.full((8, 8, 8), 1e-9))
        mesh.restrict_all()
        result = regrid(mesh, criterion, max_level=2, min_level=1)
        assert result.coarsened > 0
        assert mesh.n_subgrids() < n_fine
        mesh.check_invariants()

    def test_hysteresis_prevents_flapping(self):
        # A leaf between the coarsen and refine thresholds is left alone.
        crit = DensityCriterion(refine_above=1.0, coarsen_below=0.1)
        mesh = make_uniform_mesh(levels=1)
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.full((8, 8, 8), 0.5))
        result = regrid(mesh, crit, max_level=2, min_level=1)
        assert not result.changed


class TestTracerCriterion:
    def test_refines_on_tracer_not_total_density(self):
        mesh = make_uniform_mesh(levels=1)
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.full((8, 8, 8), 1.0))
            # Donor material only in the +x half.
            frac = np.full((8, 8, 8), 1.0 if leaf.center[0] > 0 else 0.0)
            leaf.subgrid.set_interior(Field.FRAC2, frac)
        regrid(mesh, TracerCriterion(field=Field.FRAC2, refine_above=0.5), max_level=2)
        fine = [leaf for leaf in mesh.leaves() if leaf.level == 2]
        assert fine
        assert all(leaf.center[0] > 0 for leaf in fine)


class TestCombinedCriterion:
    def test_any_refines_all_coarsen(self):
        mesh = blob_mesh()
        combined = CombinedCriterion(
            members=(
                DensityCriterion(refine_above=0.5),
                TracerCriterion(refine_above=np.inf),  # never fires
            )
        )
        result = regrid(mesh, combined, max_level=2)
        assert result.refined > 0


class TestDriverIntegration:
    @pytest.mark.slow
    def test_driver_regrid_invalidates_workload(self):
        from repro.core import OctoTigerSim
        from repro.scenarios import rotating_star

        scenario = rotating_star(level=2, scf_grid=32)
        sim = OctoTigerSim(scenario.mesh, eos=scenario.eos, gravity=False, nodes=2)
        before = sim.spec.n_subgrids
        result = sim.regrid(DensityCriterion(refine_above=1e-4), max_level=3)
        if result.changed:
            assert sim.spec.n_subgrids != before
            assert sim.counters.count("regrid.refined") == 1
        scenario.mesh.check_invariants()
