"""Network model: transfer times, FIFO ordering, accounting."""

import pytest

from repro.amt.engine import Engine
from repro.amt.network import Message, NetworkModel


class TestTransferTime:
    def test_latency_plus_bandwidth(self):
        net = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, action_overhead_s=0.0)
        assert net.transfer_time(1_000_000) == pytest.approx(1e-6 + 1e-3)

    def test_action_overhead_included(self):
        net = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, action_overhead_s=2e-6)
        assert net.transfer_time(0) == pytest.approx(3e-6)

    def test_local_path_skips_latency(self):
        net = NetworkModel(latency_s=100e-6, local_copy_Bps=1e9, action_overhead_s=1e-6)
        assert net.transfer_time(1000, local=True) == pytest.approx(1e-6 + 1e-6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1)


class TestDelivery:
    def test_message_delivered_with_payload(self):
        engine = Engine()
        net = NetworkModel()
        received = []
        net.send(engine, Message(0, 1, {"x": 1}, 128), received.append)
        engine.run()
        assert received[0].payload == {"x": 1}

    def test_fifo_per_pair(self):
        # A big slow message sent first must arrive before a small fast one.
        engine = Engine()
        net = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e6)
        order = []
        net.send(engine, Message(0, 1, "big", 10_000_000, tag="big"),
                 lambda m: order.append(m.tag))
        net.send(engine, Message(0, 1, "small", 1, tag="small"),
                 lambda m: order.append(m.tag))
        engine.run()
        assert order == ["big", "small"]

    def test_different_pairs_not_serialised(self):
        engine = Engine()
        net = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e6)
        order = []
        net.send(engine, Message(0, 1, None, 10_000_000, tag="slow01"),
                 lambda m: order.append(m.tag))
        net.send(engine, Message(2, 1, None, 1, tag="fast21"),
                 lambda m: order.append(m.tag))
        engine.run()
        assert order == ["fast21", "slow01"]

    def test_accounting(self):
        engine = Engine()
        net = NetworkModel()
        net.send(engine, Message(0, 1, None, 100), lambda m: None)
        net.send(engine, Message(1, 0, None, 300), lambda m: None)
        engine.run()
        assert net.messages_sent == 2
        assert net.bytes_sent == 400
