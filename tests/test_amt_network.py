"""Network model: transfer times, FIFO ordering, accounting."""

import pytest

from repro.amt.engine import Engine
from repro.amt.network import Message, NetworkModel


class TestTransferTime:
    def test_latency_plus_bandwidth(self):
        net = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, action_overhead_s=0.0)
        assert net.transfer_time(1_000_000) == pytest.approx(1e-6 + 1e-3)

    def test_action_overhead_included(self):
        net = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9, action_overhead_s=2e-6)
        assert net.transfer_time(0) == pytest.approx(3e-6)

    def test_local_path_skips_latency(self):
        net = NetworkModel(latency_s=100e-6, local_copy_Bps=1e9, action_overhead_s=1e-6)
        assert net.transfer_time(1000, local=True) == pytest.approx(1e-6 + 1e-6)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_time(-1)


class TestDelivery:
    def test_message_delivered_with_payload(self):
        engine = Engine()
        net = NetworkModel()
        received = []
        net.send(engine, Message(0, 1, {"x": 1}, 128), received.append)
        engine.run()
        assert received[0].payload == {"x": 1}

    def test_fifo_per_pair(self):
        # A big slow message sent first must arrive before a small fast one.
        engine = Engine()
        net = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e6)
        order = []
        net.send(engine, Message(0, 1, "big", 10_000_000, tag="big"),
                 lambda m: order.append(m.tag))
        net.send(engine, Message(0, 1, "small", 1, tag="small"),
                 lambda m: order.append(m.tag))
        engine.run()
        assert order == ["big", "small"]

    def test_different_pairs_not_serialised(self):
        engine = Engine()
        net = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e6)
        order = []
        net.send(engine, Message(0, 1, None, 10_000_000, tag="slow01"),
                 lambda m: order.append(m.tag))
        net.send(engine, Message(2, 1, None, 1, tag="fast21"),
                 lambda m: order.append(m.tag))
        engine.run()
        assert order == ["fast21", "slow01"]

    def test_accounting(self):
        engine = Engine()
        net = NetworkModel()
        net.send(engine, Message(0, 1, None, 100), lambda m: None)
        net.send(engine, Message(1, 0, None, 300), lambda m: None)
        engine.run()
        assert net.messages_sent == 2
        assert net.bytes_sent == 400


class TestSeededDrops:
    def test_rate_schedule_is_reproducible(self):
        def run(seed):
            engine = Engine()
            net = NetworkModel()
            net.drop_message(rate=0.3, seed=seed)
            fates = []
            for i in range(50):
                net.send(engine, Message(0, 1, i, 10),
                         lambda m: fates.append(m.payload))
            engine.run()
            return tuple(fates), net.messages_dropped

        first, dropped_a = run(seed=5)
        again, dropped_b = run(seed=5)
        other, _ = run(seed=6)
        assert first == again
        assert dropped_a == dropped_b
        assert first != other  # another seed draws another schedule
        assert 0 < dropped_a < 50
        assert len(first) + dropped_a == 50

    def test_rate_and_index_forms_combine(self):
        # The absolute-index API must keep working alongside a rate
        # schedule: index 0 dies deterministically even at rate=0.
        engine = Engine()
        net = NetworkModel()
        net.drop_message(0)
        net.drop_message(rate=0.0, seed=0)
        got = []
        net.send(engine, Message(0, 1, "a", 10), lambda m: got.append(m.payload))
        net.send(engine, Message(0, 1, "b", 10), lambda m: got.append(m.payload))
        engine.run()
        assert got == ["b"]
        assert net.messages_dropped == 1

    def test_missing_arguments_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel().drop_message()

    def test_fifo_and_accounting_survive_retransmission(self):
        # Under the acknowledged transport, the seeded drop hits the wire
        # (messages_dropped counts it) but delivery still happens exactly
        # once per message and in send order.
        from repro.resilience import ReliableTransport, RetryPolicy
        from repro.resilience.faults import FaultSpec

        engine = Engine()
        net = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9,
                           action_overhead_s=0.0)
        net.fault_injector = FaultSpec(drop_rate=0.25, seed=3).injector()
        transport = ReliableTransport(net, engine,
                                      policy=RetryPolicy(timeout_s=1e-3))
        order = []
        for i in range(20):
            transport.send(Message(0, 1, i, 100), lambda m: order.append(m.payload))
        engine.run()
        assert order == list(range(20))
        assert net.messages_dropped > 0
        assert transport.stats.retransmits >= net.messages_dropped - \
            transport.stats.failures
        assert transport.stats.packets_delivered == 20
        assert transport.in_flight() == 0
