"""Static plan verification (repro.analysis.planverify).

Closed-form disjointness proofs over the live plan index arrays, and the
acceptance case mirroring ``tests/test_shmrace.py``: the same seeded
scatter-overlap race is caught *statically* by ``verify_process_plan``
before a single worker forks.
"""

import numpy as np
import pytest

from repro.analysis.planverify import (
    PlanVerificationError,
    PlanViolation,
    require_verified,
    verify_bundle_plan,
    verify_fmm_split,
    verify_mesh_plans,
    verify_partition,
    verify_process_plan,
)
from repro.comms.bundle import build_bundle_plan
from repro.gravity.fmm import FmmSolver
from repro.gravity.plan import build_plan
from repro.hydro.process_backend import ProcessHydroExecutor
from repro.octree.fields import NFIELDS
from repro.octree.partition import sfc_partition
from tests.conftest import fill_gaussian, make_uniform_mesh
from tests.test_hydro_plan import make_state_mesh
from tests.test_shmrace import inject_scatter_overlap

pytestmark = pytest.mark.timeout(300)


def checks(violations):
    return sorted({v.check for v in violations})


class TestVerifyPartition:
    LOC = [0, 0, 1, 1]

    def test_clean_partition(self):
        runs = [[(0, 2, 0.5)], [(2, 4, 0.25)]]
        assert verify_partition(runs, 4, self.LOC) == []

    def test_overlap_flagged(self):
        runs = [[(0, 3, 0.5)], [(2, 4, 0.25)]]
        assert "partition-overlap" in checks(
            verify_partition(runs, 4, self.LOC)
        )

    def test_hole_flagged(self):
        runs = [[(0, 1, 0.5)], [(2, 4, 0.25)]]
        assert "partition-hole" in checks(
            verify_partition(runs, 4, self.LOC)
        )

    def test_bounds_flagged(self):
        runs = [[(0, 2, 0.5)], [(2, 5, 0.25)]]
        found = checks(verify_partition(runs, 4, self.LOC))
        assert "partition-bounds" in found
        assert "partition-hole" in found  # the bad run covers nothing

    def test_locality_mismatch_flagged(self):
        runs = [[(0, 3, 0.5)], [(3, 4, 0.25)]]
        assert "partition-locality" in checks(
            verify_partition(runs, 4, self.LOC)
        )


def _partitioned_mesh_and_plan(nprocs=2):
    mesh, _ = make_state_mesh(levels=1, refine_keys=(0,))
    sfc_partition(mesh, nprocs)
    leaves = sorted(mesh.leaves(), key=lambda nd: nd.key)
    m = mesh.n + 2 * mesh.ghost
    chunk = NFIELDS * m**3
    offsets = {leaf.key: i * chunk for i, leaf in enumerate(leaves)}
    return mesh, build_bundle_plan(mesh, offsets)


class TestVerifyBundlePlan:
    def test_real_plan_is_clean(self):
        mesh, plan = _partitioned_mesh_and_plan()
        assert verify_bundle_plan(mesh, plan) == []

    def test_injected_overlap_flagged(self):
        mesh, plan = _partitioned_mesh_and_plan()
        inject_scatter_overlap(plan)
        found = checks(verify_bundle_plan(mesh, plan))
        assert "bundle-dst-overlap" in found
        assert "bundle-dst-coverage" in found  # retargeted band lost its donor
        assert "bundle-dst-ownership" in found

    def test_interior_scatter_flagged(self):
        mesh, plan = _partitioned_mesh_and_plan()
        m = mesh.n + 2 * mesh.ghost
        g = mesh.ghost
        bundle = next(b for _, b in sorted(plan.bundles.items())
                      if b.copy_dst.size)
        # Retarget one scatter element into its own slot's interior.
        slot = int(bundle.copy_dst[0]) // (NFIELDS * m**3)
        interior = slot * NFIELDS * m**3 + ((g * m) + g) * m + g
        bundle.copy_dst[0] = interior
        found = checks(verify_bundle_plan(mesh, plan))
        assert "bundle-dst-interior" in found
        assert "bundle-dst-coverage" in found

    def test_out_of_bounds_flagged(self):
        mesh, plan = _partitioned_mesh_and_plan()
        bundle = next(b for _, b in sorted(plan.bundles.items())
                      if b.copy_dst.size)
        bundle.copy_dst[0] = 10**9
        found = checks(verify_bundle_plan(mesh, plan))
        assert "bundle-bounds" in found

    def test_foreign_source_flagged(self):
        mesh, plan = _partitioned_mesh_and_plan()
        m = mesh.n + 2 * mesh.ghost
        chunk = NFIELDS * m**3
        leaves = sorted(mesh.leaves(), key=lambda nd: nd.key)
        bundle = next(b for _, b in sorted(plan.bundles.items())
                      if b.copy_src.size)
        # Point one gather read at a slot the src rank does not own.
        foreign = next(i for i, leaf in enumerate(leaves)
                       if leaf.locality != bundle.src_locality)
        bundle.copy_src[0] = foreign * chunk + (bundle.copy_src[0] % chunk)
        assert "bundle-src-ownership" in checks(
            verify_bundle_plan(mesh, plan)
        )


class _FakeLevel:
    def __init__(self, tgt, src, indptr):
        self.tgt_idx = np.asarray(tgt, dtype=np.intp)
        self.src_idx = np.asarray(src, dtype=np.intp)
        self.indptr = np.asarray(indptr, dtype=np.intp)


class _FakePlan:
    def __init__(self, levels, shards):
        self.far_levels = levels
        self._shards = shards

    def split(self, max_rows):
        return list(self._shards)


class TestVerifyFmmSplit:
    def test_real_plan_shards_clean(self):
        mesh = make_uniform_mesh(2)
        fill_gaussian(mesh)
        plan = build_plan(mesh, 0.5)
        for split in (16, 64, 256):
            assert verify_fmm_split(plan, split) == []

    def test_shard_target_overlap_flagged(self):
        level = _FakeLevel([0, 1], [5, 6], [0, 1, 2])
        shards = [
            _FakeLevel([0], [5], [0, 1]),
            _FakeLevel([0], [6], [0, 1]),  # steals target 0
        ]
        found = checks(verify_fmm_split(_FakePlan([level], shards), 8))
        assert "fmm-shard-overlap" in found
        assert "fmm-shard-targets" in found

    def test_csr_inconsistency_flagged(self):
        level = _FakeLevel([0, 1], [5, 6], [0, 1, 2])
        shards = [_FakeLevel([0, 1], [5, 6], [0, 2])]  # indptr too short
        assert "fmm-shard-csr" in checks(
            verify_fmm_split(_FakePlan([level], shards), 8)
        )

    def test_dropped_source_rows_flagged(self):
        level = _FakeLevel([0, 1], [5, 6], [0, 1, 2])
        shards = [_FakeLevel([0, 1], [5], [0, 1, 1])]
        found = checks(verify_fmm_split(_FakePlan([level], shards), 8))
        assert "fmm-shard-sources" in found

    def test_solver_refuses_bad_split(self):
        """FmmSolver checks each shard decomposition before using it."""
        mesh = make_uniform_mesh(2)
        fill_gaussian(mesh)
        solver = FmmSolver(m2l_split=64)
        solver.solve(mesh)  # clean plan verifies and solves
        assert solver.verify_plans


class TestExecutorGate:
    def test_static_catch_of_seeded_race(self):
        """verify_plans=True refuses the injected plan before forking —
        the static half of the acceptance criterion."""
        mesh, eos = make_state_mesh(levels=1, refine_keys=(0,))
        ex = ProcessHydroExecutor(mesh, eos=eos, nprocs=2)
        ex.bundle_plan_hook = inject_scatter_overlap
        try:
            with pytest.raises(PlanVerificationError) as err:
                ex.ensure()
            found = {v.check for v in err.value.violations}
            assert "bundle-dst-overlap" in found
        finally:
            ex.close()

    def test_verified_executor_plan_clean(self):
        mesh, eos = make_state_mesh(levels=1, refine_keys=(0,))
        ex = ProcessHydroExecutor(mesh, eos=eos, nprocs=2)
        try:
            ex.ensure()
            assert verify_process_plan(ex) == []
        finally:
            ex.close()

    def test_no_verify_escape_hatch(self):
        """--no-verify-plans must still fork and run the injected plan
        (the dynamic detector is then the only line of defence)."""
        mesh, eos = make_state_mesh(levels=1, refine_keys=(0,))
        ex = ProcessHydroExecutor(
            mesh, eos=eos, nprocs=2, verify_plans=False
        )
        ex.bundle_plan_hook = inject_scatter_overlap
        try:
            ex.ensure()  # no PlanVerificationError
            assert ex.engine.started
        finally:
            ex.close()


class TestScenarioPass:
    @pytest.mark.parametrize("nprocs", [2, 3])
    def test_mesh_plans_clean(self, nprocs):
        mesh, _ = make_state_mesh(levels=1, refine_keys=(0,))
        assert verify_mesh_plans(mesh, nprocs) == []


class TestRequireVerified:
    def test_empty_is_noop(self):
        require_verified([])

    def test_raises_with_all_violations(self):
        violations = [
            PlanViolation("partition-hole", "slot 3 unowned"),
            PlanViolation("bundle-dst-overlap", "element 7 double-written"),
        ]
        with pytest.raises(PlanVerificationError) as err:
            require_verified(violations)
        assert err.value.violations == tuple(violations)
        assert "partition-hole" in str(err.value)
        assert "bundle-dst-overlap" in str(err.value)
