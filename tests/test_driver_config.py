"""Config-driven driver construction."""

import pytest

from repro.core import OctoTigerSim
from repro.machines import OOKAMI
from repro.util.config import Config

from tests.conftest import fill_gaussian, make_uniform_mesh


class TestFromConfig:
    def make(self, **overrides):
        mesh = make_uniform_mesh(levels=1)
        fill_gaussian(mesh)
        cfg = Config(overrides)
        return OctoTigerSim.from_config(mesh, cfg, machine=OOKAMI, nodes=2)

    def test_defaults_map_through(self):
        sim = self.make()
        assert sim.eos.gamma == pytest.approx(5.0 / 3.0)
        assert sim.integrator.cfl == 0.4
        assert sim.gravity_solver is not None
        assert sim.config.machine is OOKAMI
        assert sim.config.nodes == 2

    def test_hydro_keys(self):
        sim = self.make(**{"hydro.gamma": 1.4, "hydro.cfl": 0.25,
                           "hydro.reconstruction": "constant"})
        assert sim.eos.gamma == 1.4
        assert sim.integrator.cfl == 0.25
        assert sim.integrator.reconstruction == "constant"

    def test_gravity_keys(self):
        sim = self.make(**{"gravity.enabled": False})
        assert sim.gravity_solver is None
        sim2 = self.make(**{"gravity.order": 2, "gravity.theta": 0.4,
                            "gravity.angmom_correction": False})
        assert sim2.gravity_solver.order == 2
        assert sim2.gravity_solver.theta == 0.4
        assert sim2.gravity_solver.angmom_correction is False

    def test_runtime_keys(self):
        sim = self.make(**{"runtime.tasks_per_kernel": 16,
                           "simd.abi": "scalar",
                           "comm.local_optimization": False})
        assert sim.config.tasks_per_multipole_kernel == 16
        assert sim.config.simd is False
        assert sim.config.comm_local_optimization is False

    def test_frame_omega(self):
        sim = self.make(**{"frame.omega": 0.5})
        assert sim.integrator.omega == 0.5
        mesh = make_uniform_mesh(levels=1)
        sim2 = OctoTigerSim.from_config(mesh, Config({"frame.omega": 0.5}),
                                        machine=OOKAMI, omega=0.9)
        assert sim2.integrator.omega == 0.9

    def test_configured_step_runs(self):
        sim = self.make(**{"gravity.enabled": False, "hydro.gamma": 1.4})
        record = sim.step(dt=1e-4)
        assert record.dt == 1e-4
