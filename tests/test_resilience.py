"""Seeded chaos tests: the resilience layer under injected network faults.

The matrix crosses fault kinds (drop / delay / duplicate / node crash,
plus a mixed schedule) with recovery on and off.  The property under test
is always the same, and it is the one the paper could not get on Fugaku:

* with recovery, every run **completes** and the physical state matches
  the fault-free run to 1e-12 (in fact bit-exactly — the virtual clock
  makes the protocol deterministic);
* without recovery, lossy schedules raise a *typed* ``DeadlockError``
  naming the stalled future chain (or ``UnrecoverableFault`` when
  retransmission gives up on a crashed node) — never a silent hang.

Every test carries a wall-clock timeout (pytest-timeout when installed,
the SIGALRM shim in ``conftest.py`` otherwise): a hang is a failure, not
a stuck CI job.
"""

import numpy as np
import pytest

from repro.amt.engine import Engine
from repro.amt.network import Message, NetworkModel
from repro.core import OctoTigerSim
from repro.core.diagnostics import conserved_totals
from repro.core.distributed import DistributedHydroDriver
from repro.distsim.runconfig import RunConfig
from repro.machines import FUGAKU
from repro.resilience import (
    DeadlockError,
    FaultSpec,
    ReliableTransport,
    RetryPolicy,
    UnrecoverableFault,
)
from repro.scenarios.blast import sedov_blast

from tests.test_distributed_driver import build_mesh, clone

pytestmark = pytest.mark.timeout(180)


def assert_fields_match(mesh_a, mesh_b, atol=1e-12):
    for key in mesh_a.leaf_keys():
        np.testing.assert_allclose(
            mesh_b.nodes[key].subgrid.interior_view(),
            mesh_a.nodes[key].subgrid.interior_view(),
            rtol=0,
            atol=atol,
        )


# ---------------------------------------------------------------------------
# Fault schedules
# ---------------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_round_trip(self):
        spec = FaultSpec.parse("drop=0.01, delay=0.2, delay_s=1e-4, dup=0.05, "
                               "seed=7, crash_loc=1, crash_step=2")
        assert spec == FaultSpec(
            drop_rate=0.01, delay_rate=0.2, delay_s=1e-4, duplicate_rate=0.05,
            seed=7, crash_locality=1, crash_step=2,
        )

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault key"):
            FaultSpec.parse("lose=0.5")
        with pytest.raises(ValueError, match="not key=value"):
            FaultSpec.parse("drop")

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultSpec(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(delay_s=-1.0)

    def test_decisions_are_pure_functions_of_the_index(self):
        spec = FaultSpec(drop_rate=0.3, delay_rate=0.3, delay_s=1e-5,
                         duplicate_rate=0.3, seed=11)
        a = [spec.injector(stream=2).decide(i, 0, 1) for i in range(200)]
        b = [spec.injector(stream=2).decide(i, 0, 1) for i in range(200)]
        assert a == b
        # A different stream (another timestep) draws a different schedule.
        c = [spec.injector(stream=3).decide(i, 0, 1) for i in range(200)]
        assert a != c
        assert any(d.drop for d in a)
        assert any(d.extra_delay_s > 0 for d in a)
        assert any(d.duplicates for d in a)

    def test_crash_drops_everything_touching_the_locality(self):
        spec = FaultSpec(crash_locality=1, crash_step=0)
        injector = spec.injector(stream=0)
        assert injector.decide(0, 1, 2).drop  # from the dead node
        assert injector.decide(1, 0, 1).drop  # to the dead node
        assert not injector.decide(2, 0, 2).drop  # bystanders unaffected
        # On another step the node is alive.
        later = spec.injector(stream=1)
        assert not later.crash_active
        assert not later.decide(0, 1, 2).drop

    def test_without_crash_heals_only_the_crash(self):
        spec = FaultSpec(drop_rate=0.1, crash_locality=2)
        healed = spec.without_crash()
        assert healed.crash_locality == -1
        assert healed.drop_rate == 0.1


# ---------------------------------------------------------------------------
# The acknowledged-retransmit transport, in isolation
# ---------------------------------------------------------------------------
def _wire(**kwargs):
    engine = Engine()
    net = NetworkModel(latency_s=1e-6, bandwidth_Bps=1e9,
                       action_overhead_s=0.0, **kwargs)
    return engine, net


class TestReliableTransport:
    def test_dropped_packet_is_retransmitted(self):
        engine, net = _wire()
        net.drop_message(0)
        transport = ReliableTransport(net, engine,
                                      policy=RetryPolicy(timeout_s=1e-3))
        got = []
        transport.send(Message(0, 1, "a", 100, tag="a"),
                       lambda m: got.append(m.payload))
        engine.run()
        assert got == ["a"]
        assert transport.stats.retransmits == 1
        assert net.messages_dropped == 1
        assert transport.in_flight() == 0

    def test_lost_ack_does_not_double_deliver(self):
        engine, net = _wire()
        net.drop_message(1)  # index 0 = data, index 1 = its ack
        transport = ReliableTransport(net, engine,
                                      policy=RetryPolicy(timeout_s=1e-3))
        got = []
        transport.send(Message(0, 1, "a", 100, tag="a"),
                       lambda m: got.append(m.payload))
        engine.run()
        # The sender retransmitted (it never saw the ack); the receiver
        # suppressed the duplicate and re-acked.
        assert got == ["a"]
        assert transport.stats.retransmits == 1
        assert transport.stats.duplicates_suppressed == 1
        assert transport.in_flight() == 0

    def test_fifo_survives_retransmission(self):
        # Drop the FIRST of three packets on the same ordered pair: the
        # later ones arrive early, sit in the reorder buffer, and are
        # delivered in sequence order once the retransmission lands.
        engine, net = _wire()
        net.drop_message(0)
        transport = ReliableTransport(net, engine,
                                      policy=RetryPolicy(timeout_s=1e-3))
        order = []
        for tag in ("a", "b", "c"):
            transport.send(Message(0, 1, tag, 100, tag=tag),
                           lambda m: order.append(m.tag))
        engine.run()
        assert order == ["a", "b", "c"]
        assert transport.stats.reordered >= 1
        assert transport.stats.packets_delivered == 3

    def test_wire_duplication_delivers_exactly_once(self):
        engine, net = _wire()
        net.fault_injector = FaultSpec(duplicate_rate=1.0, seed=0).injector()
        transport = ReliableTransport(net, engine,
                                      policy=RetryPolicy(timeout_s=1e-3))
        got = []
        for tag in ("a", "b"):
            transport.send(Message(0, 1, tag, 100, tag=tag),
                           lambda m: got.append(m.tag))
        engine.run()
        assert got == ["a", "b"]
        assert transport.stats.duplicates_suppressed >= 2

    def test_retries_exhausted_raises_typed_fault(self):
        engine, net = _wire()
        net.fault_injector = FaultSpec(drop_rate=1.0, seed=0).injector()
        transport = ReliableTransport(
            net, engine, policy=RetryPolicy(timeout_s=1e-3, max_retries=2)
        )
        transport.send(Message(0, 1, "doomed", 100, tag="ghost.X"),
                       lambda m: None)
        with pytest.raises(UnrecoverableFault, match="retries exhausted") as exc:
            engine.run()
        assert exc.value.tag == "ghost.X"
        assert exc.value.attempts == 3  # initial + max_retries
        assert transport.stats.failures == 1


# ---------------------------------------------------------------------------
# Chaos matrix: real physics through the distributed task graph
# ---------------------------------------------------------------------------
CHAOS_SCHEDULES = [
    # Coalescing (docs/comms.md) cut per-step message volume ~10x, so the
    # drop rates here are scaled up to keep the seeded schedules biting.
    pytest.param(FaultSpec(drop_rate=0.2, seed=1), id="drop"),
    pytest.param(FaultSpec(delay_rate=0.5, delay_s=1e-4, seed=1), id="delay"),
    pytest.param(FaultSpec(duplicate_rate=0.5, seed=2), id="duplicate"),
    pytest.param(
        FaultSpec(drop_rate=0.04, delay_rate=0.3, delay_s=1e-4,
                  duplicate_rate=0.2, seed=3),
        id="mixed",
    ),
]


class TestChaosDistributed:
    """DistributedHydroDriver: faults hit *real* ghost messages."""

    @pytest.mark.parametrize("faults", CHAOS_SCHEDULES)
    def test_recovery_completes_and_matches_fault_free(self, faults):
        mesh_clean, eos = build_mesh()
        mesh_chaos = clone(mesh_clean)
        config = RunConfig(machine=FUGAKU, nodes=2)

        clean = DistributedHydroDriver(mesh_clean, eos, config=config)
        chaos = DistributedHydroDriver(
            mesh_chaos, eos, config=config, faults=faults, recovery=True
        )
        for _ in range(2):
            clean.step(1e-3)
            result = chaos.step(1e-3)
        assert_fields_match(mesh_clean, mesh_chaos)
        assert result.acks > 0  # the protocol actually ran
        if faults.drop_rate > 0:
            # The schedule must have bitten for the test to mean anything.
            assert result.messages_dropped > 0
            assert result.retransmits > 0

    def test_injected_delays_stretch_the_makespan(self):
        mesh_a, eos = build_mesh()
        mesh_b = clone(mesh_a)
        config = RunConfig(machine=FUGAKU, nodes=2)
        clean = DistributedHydroDriver(mesh_a, eos, config=config).step(1e-3)
        delayed = DistributedHydroDriver(
            mesh_b, eos, config=config,
            faults=FaultSpec(delay_rate=0.5, delay_s=1e-4, seed=1),
            recovery=True,
        ).step(1e-3)
        assert delayed.makespan_s > clean.makespan_s
        assert_fields_match(mesh_a, mesh_b)

    @pytest.mark.parametrize(
        "faults",
        [
            pytest.param(FaultSpec(delay_rate=0.5, delay_s=1e-4, seed=1),
                         id="delay"),
            pytest.param(FaultSpec(duplicate_rate=0.5, seed=2),
                         id="duplicate"),
        ],
    )
    def test_lossless_faults_complete_even_without_recovery(self, faults):
        # Delays and duplicates reorder the schedule but lose nothing, so
        # the bare fire-and-forget network still finishes — and because the
        # data motion is promise-guarded, the fields still match exactly.
        mesh_clean, eos = build_mesh()
        mesh_chaos = clone(mesh_clean)
        config = RunConfig(machine=FUGAKU, nodes=2)
        DistributedHydroDriver(mesh_clean, eos, config=config).step(1e-3)
        DistributedHydroDriver(
            mesh_chaos, eos, config=config, faults=faults
        ).step(1e-3)
        assert_fields_match(mesh_clean, mesh_chaos)

    def test_drop_without_recovery_is_a_named_deadlock(self):
        mesh, eos = build_mesh()
        driver = DistributedHydroDriver(
            mesh, eos, config=RunConfig(machine=FUGAKU, nodes=2),
            faults=FaultSpec(drop_rate=0.2, seed=1),
        )
        with pytest.raises(DeadlockError) as exc:
            driver.step(1e-3)
        err = exc.value
        assert "stalled chain" in str(err)
        assert err.chain, "the watchdog must name the stalled future chain"
        assert any(
            "ghost" in name or "fill" in name or "bundle" in name
            for name in err.chain
        ), f"expected a ghost/fill/bundle stage in the chain, got {err.chain}"

    def test_crash_without_recovery_is_a_named_deadlock(self):
        mesh, eos = build_mesh()
        driver = DistributedHydroDriver(
            mesh, eos, config=RunConfig(machine=FUGAKU, nodes=2),
            faults=FaultSpec(crash_locality=1, crash_step=0),
        )
        with pytest.raises(DeadlockError) as exc:
            driver.step(1e-3)
        assert exc.value.chain

    def test_crash_defeats_retransmission(self):
        # Retry helps against loss, not against a dead peer: the transport
        # gives up with the typed fault that tells the driver to restart.
        mesh, eos = build_mesh()
        driver = DistributedHydroDriver(
            mesh, eos, config=RunConfig(machine=FUGAKU, nodes=2),
            faults=FaultSpec(crash_locality=1, crash_step=0),
            recovery=RetryPolicy(timeout_s=1e-4, max_retries=2),
        )
        with pytest.raises(UnrecoverableFault, match="retries exhausted"):
            driver.step(1e-3)


# ---------------------------------------------------------------------------
# Acceptance: the full driver on the blast scenario
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def blast_reference():
    """Fault-free blast run: final conserved totals (module-scoped)."""
    scenario = sedov_blast(levels=2)
    sim = OctoTigerSim(scenario.mesh, eos=scenario.eos, nodes=2)
    sim.run(2)
    return conserved_totals(sim.mesh)


def _assert_conserved_match(totals, reference, rtol=1e-12):
    for name, value in reference.items():
        assert abs(totals[name] - value) <= rtol * max(1.0, abs(value)), (
            f"{name}: {totals[name]!r} != {value!r}"
        )


class TestDriverAcceptance:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_seeded_drop_with_recovery_matches_fault_free(
        self, seed, blast_reference
    ):
        scenario = sedov_blast(levels=2)
        sim = OctoTigerSim(
            scenario.mesh, eos=scenario.eos, nodes=2,
            faults=FaultSpec(drop_rate=0.1, seed=seed),
        )
        records = sim.run(2)
        assert len(records) == 2
        assert sim.counters.total("resilience.messages_dropped") > 0
        assert sim.counters.total("resilience.retransmits") > 0
        _assert_conserved_match(conserved_totals(sim.mesh), blast_reference)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_same_seeds_without_recovery_deadlock(self, seed):
        scenario = sedov_blast(levels=2)
        sim = OctoTigerSim(
            scenario.mesh, eos=scenario.eos, nodes=2,
            faults=FaultSpec(drop_rate=0.1, seed=seed),
            recovery=False,
        )
        with pytest.raises(DeadlockError) as exc:
            sim.run(2)
        assert exc.value.chain
        assert "stalled chain" in str(exc.value)
        assert sim.counters.total("resilience.watchdog_trips") == 1

    def test_crash_rolls_back_and_replays_bit_exactly(self, blast_reference):
        scenario = sedov_blast(levels=2)
        sim = OctoTigerSim(
            scenario.mesh, eos=scenario.eos, nodes=2,
            faults=FaultSpec(crash_locality=1, crash_step=1, seed=0),
            checkpoint_every=1,
        )
        records = sim.run(2)
        assert len(records) == 2
        assert sim.counters.total("resilience.rollbacks") >= 1
        assert sim.counters.total("resilience.checkpoints") >= 2
        _assert_conserved_match(conserved_totals(sim.mesh), blast_reference)

    def test_crash_without_checkpoints_raises(self):
        # Recovery is on but there is nothing to roll back to: the typed
        # fault from the transport must reach the caller.
        scenario = sedov_blast(levels=2)
        sim = OctoTigerSim(
            scenario.mesh, eos=scenario.eos, nodes=2,
            faults=FaultSpec(crash_locality=1, crash_step=1, seed=0),
            recovery=RetryPolicy(timeout_s=1e-4, max_retries=2),
        )
        with pytest.raises(UnrecoverableFault):
            sim.run(1)

    def test_duplicate_storm_is_suppressed_and_counted(self, blast_reference):
        scenario = sedov_blast(levels=2)
        sim = OctoTigerSim(
            scenario.mesh, eos=scenario.eos, nodes=2,
            faults=FaultSpec(duplicate_rate=0.5, seed=4),
        )
        sim.run(2)
        assert sim.counters.total("resilience.messages_duplicated") > 0
        assert sim.counters.total("resilience.duplicates_suppressed") > 0
        _assert_conserved_match(conserved_totals(sim.mesh), blast_reference)

    def test_clean_run_under_transport_is_overhead_only(self, blast_reference):
        # An all-zero-rate schedule still routes every ghost message through
        # the ack protocol: no retransmits, no drops, same physics.
        scenario = sedov_blast(levels=2)
        sim = OctoTigerSim(
            scenario.mesh, eos=scenario.eos, nodes=2, faults=FaultSpec()
        )
        sim.run(2)
        assert sim.counters.total("resilience.acks") > 0
        assert sim.counters.total("resilience.retransmits") == 0
        assert sim.counters.total("resilience.messages_dropped") == 0
        _assert_conserved_match(conserved_totals(sim.mesh), blast_reference)
