"""Bi-polytropic core/envelope structures (paper SIV-C)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hydro.eos import BipolytropicEOS


def make_eos(**kw):
    defaults = dict(K_env=2.0, n_core=3.0, n_env=1.5, rho_transition=0.2)
    defaults.update(kw)
    return BipolytropicEOS(**defaults)


class TestThermodynamics:
    def test_pressure_continuity_at_transition(self):
        eos = make_eos()
        t = eos.rho_transition
        below = float(eos.pressure(np.array(t * (1 - 1e-10))))
        above = float(eos.pressure(np.array(t * (1 + 1e-10))))
        assert below == pytest.approx(above, rel=1e-8)

    def test_enthalpy_continuity_at_transition(self):
        eos = make_eos()
        t = eos.rho_transition
        below = float(eos.enthalpy(np.array(t * (1 - 1e-10))))
        above = float(eos.enthalpy(np.array(t * (1 + 1e-10))))
        assert below == pytest.approx(above, rel=1e-8)

    def test_k_core_from_continuity(self):
        eos = make_eos()
        t = eos.rho_transition
        assert eos.K_core * t**eos.Gamma_core == pytest.approx(
            eos.K_env * t**eos.Gamma_env
        )

    def test_envelope_limit_is_pure_polytrope(self):
        from repro.hydro.eos import PolytropicEOS

        eos = make_eos()
        mono = PolytropicEOS(K=eos.K_env, n=eos.n_env)
        rho = np.array([0.01, 0.05, 0.15])
        np.testing.assert_allclose(eos.pressure(rho), mono.pressure(rho))
        np.testing.assert_allclose(eos.enthalpy(rho), mono.enthalpy(rho))

    @given(st.floats(min_value=1e-4, max_value=10.0))
    @settings(max_examples=60)
    def test_enthalpy_round_trip(self, rho):
        eos = make_eos()
        r = np.array([rho])
        np.testing.assert_allclose(
            eos.rho_from_enthalpy(eos.enthalpy(r)), r, rtol=1e-10
        )

    def test_enthalpy_monotone(self):
        eos = make_eos()
        rho = np.linspace(0.0, 2.0, 500)
        assert (np.diff(eos.enthalpy(rho)) > 0).all()

    def test_negative_enthalpy_is_vacuum(self):
        assert make_eos().rho_from_enthalpy(np.array(-0.5)) == 0.0

    def test_linear_in_K_env(self):
        eos1 = make_eos(K_env=1.0)
        eos3 = eos1.with_K_env(3.0)
        rho = np.array([0.05, 0.5])
        np.testing.assert_allclose(eos3.enthalpy(rho), 3.0 * eos1.enthalpy(rho))

    def test_internal_energy_uses_local_index(self):
        eos = make_eos()
        rho_env = np.array([0.05])
        rho_core = np.array([0.5])
        assert eos.internal_energy_density(rho_env) == pytest.approx(
            eos.n_env * eos.pressure(rho_env)
        )
        assert eos.internal_energy_density(rho_core) == pytest.approx(
            eos.n_core * eos.pressure(rho_core)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            make_eos(rho_transition=0.0)
        with pytest.raises(ValueError):
            make_eos(K_env=-1.0)


@pytest.mark.slow
class TestBipolytropicScf:
    def test_converges_and_is_more_condensed(self):
        from repro.scf import SingleStarSCF

        bipoly = SingleStarSCF(
            rho_max=1.0, r_equator=0.5, r_pole=0.5, n=40,
            structure=BipolytropicEOS(n_core=3.0, n_env=1.5, rho_transition=0.3),
        ).run()
        mono = SingleStarSCF(
            rho_max=1.0, r_equator=0.5, r_pole=0.5, poly_n=1.5, n=40
        ).run()
        assert bipoly.converged
        assert isinstance(bipoly.polytropes[0], BipolytropicEOS)
        # The n=3 core is more centrally condensed: less total mass for the
        # same radius and maximum density.
        assert bipoly.star_masses[0] < mono.star_masses[0]

    def test_deposits_to_mesh(self):
        from repro.hydro.eos import IdealGasEOS
        from repro.scf import SingleStarSCF
        from tests.conftest import make_uniform_mesh

        result = SingleStarSCF(
            rho_max=1.0, r_equator=0.5, r_pole=0.5, n=32,
            structure=BipolytropicEOS(n_core=3.0, n_env=1.5, rho_transition=0.3),
        ).run()
        mesh = make_uniform_mesh(levels=1)
        result.deposit_to_mesh(mesh, IdealGasEOS())
        assert mesh.total_mass() == pytest.approx(result.total_mass(), rel=0.1)
