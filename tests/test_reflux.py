"""Flux correction at coarse-fine boundaries (refluxing)."""

import numpy as np
import pytest

from repro.hydro import HydroIntegrator, IdealGasEOS, apply_flux_corrections
from repro.hydro.solver import dudt_subgrid
from repro.octree import AmrMesh, Field
from repro.octree.ghost import fill_all_ghosts


def adaptive_blob_mesh(with_velocity=True):
    """One refined corner; a smooth blob straddling the AMR boundary."""
    eos = IdealGasEOS()
    mesh = AmrMesh(n=8, ghost=2, domain_size=2.0)
    mesh.refine((0, 0))
    mesh.refine((1, 0))
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        rho = 1.0 + 0.5 * np.exp(-((x + 0.5) ** 2 + (y + 0.5) ** 2 + (z + 0.5) ** 2) / 0.05)
        eint = np.full_like(rho, 2.5)
        leaf.subgrid.set_interior(Field.RHO, rho)
        leaf.subgrid.set_interior(Field.EGAS, eint)
        leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
        if with_velocity:
            leaf.subgrid.set_interior(Field.SX, 0.1 * rho * np.sin(np.pi * y))
    mesh.restrict_all()
    return mesh, eos


def rhs_and_fluxes(mesh, eos):
    fill_all_ghosts(mesh)
    rhs, fluxes = {}, {}
    for leaf in mesh.leaves():
        d, _, f = dudt_subgrid(leaf.subgrid, leaf.dx, eos, return_boundary_fluxes=True)
        rhs[leaf.key] = d
        fluxes[leaf.key] = f
    return rhs, fluxes


def boundary_flux_integral(mesh, fluxes, field):
    """Net outflow of one field through the physical domain boundary."""
    total = 0.0
    for leaf in mesh.leaves():
        area = leaf.dx**2
        for axis in range(3):
            for side in (0, 1):
                kind, _ = mesh.face_neighbor(leaf, axis, side)
                if kind == "boundary":
                    f = float(fluxes[leaf.key][(axis, side)][field].sum()) * area
                    total += f if side == 1 else -f
    return total


class TestDiscreteConservationIdentity:
    @pytest.mark.parametrize("field", [Field.RHO, Field.SX, Field.EGAS])
    def test_rhs_total_equals_boundary_flux(self, field):
        """After reflux, the interior budget equals the boundary integral
        to machine precision — the defining property of the correction."""
        mesh, eos = adaptive_blob_mesh()
        rhs, fluxes = rhs_and_fluxes(mesh, eos)
        apply_flux_corrections(mesh, rhs, fluxes)
        interior = sum(
            float(rhs[l.key][field].sum()) * l.cell_volume for l in mesh.leaves()
        )
        boundary = boundary_flux_integral(mesh, fluxes, field)
        scale = max(abs(interior), abs(boundary), 1e-3)
        assert interior + boundary == pytest.approx(0.0, abs=1e-13 * scale + 1e-16)

    def test_identity_fails_without_reflux(self):
        mesh, eos = adaptive_blob_mesh()
        rhs, fluxes = rhs_and_fluxes(mesh, eos)
        interior = sum(
            float(rhs[l.key][Field.RHO].sum()) * l.cell_volume for l in mesh.leaves()
        )
        boundary = boundary_flux_integral(mesh, fluxes, Field.RHO)
        assert abs(interior + boundary) > 1e-6  # the AMR leak is real

    def test_face_count(self):
        mesh, eos = adaptive_blob_mesh()
        rhs, fluxes = rhs_and_fluxes(mesh, eos)
        # The refined corner node has 3 interior faces -> 3 coarse-fine faces.
        assert apply_flux_corrections(mesh, rhs, fluxes) == 3

    def test_uniform_mesh_untouched(self):
        eos = IdealGasEOS()
        mesh = AmrMesh(n=8, ghost=2, domain_size=2.0)
        mesh.refine((0, 0))
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.ones((8, 8, 8)))
            leaf.subgrid.set_interior(Field.EGAS, np.full((8, 8, 8), 2.5))
        rhs, fluxes = rhs_and_fluxes(mesh, eos)
        assert apply_flux_corrections(mesh, rhs, fluxes) == 0


class TestIntegratorIntegration:
    def test_reflux_improves_multi_step_conservation(self):
        drifts = {}
        for reflux in (False, True):
            mesh, eos = adaptive_blob_mesh(with_velocity=False)
            integ = HydroIntegrator(mesh, eos, reflux=reflux)
            m0 = mesh.integral(Field.RHO)
            for _ in range(3):
                integ.step()
            drifts[reflux] = abs(mesh.integral(Field.RHO) - m0)
        # With zero initial velocity the boundary contributes nothing for a
        # few steps; the residual drift is the AMR leak, which refluxing
        # kills by orders of magnitude.
        assert drifts[True] < drifts[False] / 20.0

    def test_faces_refluxed_counter(self):
        mesh, eos = adaptive_blob_mesh()
        integ = HydroIntegrator(mesh, eos, reflux=True)
        integ.step()
        assert integ.faces_refluxed == 9  # 3 faces x 3 RK stages

    def test_reflux_off_by_flag(self):
        mesh, eos = adaptive_blob_mesh()
        integ = HydroIntegrator(mesh, eos, reflux=False)
        integ.step()
        assert integ.faces_refluxed == 0

    def test_uniform_state_still_steady_with_reflux(self):
        eos = IdealGasEOS()
        mesh = AmrMesh(n=8, ghost=2, domain_size=2.0)
        mesh.refine((0, 0))
        mesh.refine((1, 0))
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.ones((8, 8, 8)))
            leaf.subgrid.set_interior(Field.EGAS, np.full((8, 8, 8), 2.5))
            leaf.subgrid.set_interior(
                Field.TAU, eos.tau_from_eint(np.full((8, 8, 8), 2.5))
            )
        mesh.restrict_all()
        integ = HydroIntegrator(mesh, eos, reflux=True)
        integ.step()
        for leaf in mesh.leaves():
            assert np.allclose(leaf.subgrid.interior_view(Field.RHO), 1.0, atol=1e-12)
