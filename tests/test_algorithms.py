"""HPX parallel-algorithms analog."""

import numpy as np
import pytest

from repro.amt.algorithms import (
    ParallelPolicy,
    exclusive_scan,
    for_each,
    for_each_async,
    inclusive_scan,
    seq,
    transform_reduce,
)
from repro.amt.locality import Runtime


def make_policy(workers=4, chunks=4, cost=0.0):
    rt = Runtime(1, workers)
    return rt, ParallelPolicy(rt.here(), chunks=chunks, cost_per_item=cost)


class TestForEach:
    def test_seq_runs_inline(self):
        data = np.zeros(10)

        def body(b, e):
            data[b:e] = 1.0

        for_each(seq, 10, body)
        assert (data == 1.0).all()

    def test_par_covers_range_once(self):
        rt, par = make_policy(chunks=3)
        hits = np.zeros(100, dtype=int)

        def body(b, e):
            hits[b:e] += 1

        for_each(par, 100, body)
        assert (hits == 1).all()

    def test_par_parallelises_virtual_time(self):
        rt1, par1 = make_policy(workers=4, chunks=1, cost=1.0)
        for_each(par1, 8, lambda b, e: None)
        serial_time = rt1.engine.now

        rt4, par4 = make_policy(workers=4, chunks=4, cost=1.0)
        for_each(par4, 8, lambda b, e: None)
        assert rt4.engine.now == pytest.approx(serial_time / 4)

    def test_async_returns_future(self):
        rt, par = make_policy()
        future = for_each_async(par, 10, lambda b, e: None)
        assert not future.is_ready()
        rt.run_until_ready(future)

    def test_empty_range(self):
        calls = []
        for_each(seq, 0, lambda b, e: calls.append((b, e)))
        assert calls == []

    def test_negative_range_rejected(self):
        with pytest.raises(ValueError):
            for_each_async(seq, -1, lambda b, e: None)

    def test_policy_validation(self):
        rt = Runtime(1, 1)
        with pytest.raises(ValueError):
            ParallelPolicy(rt.here(), chunks=0)
        with pytest.raises(ValueError):
            ParallelPolicy(rt.here(), cost_per_item=-1.0)


class TestTransformReduce:
    def test_seq(self):
        data = np.arange(100.0)
        total = transform_reduce(seq, 100, lambda b, e: float(data[b:e].sum()))
        assert total == data.sum()

    def test_par_matches_seq(self):
        data = np.arange(101.0)  # odd size: uneven chunks
        rt, par = make_policy(chunks=4)
        total = transform_reduce(par, 101, lambda b, e: float(data[b:e].sum()))
        assert total == pytest.approx(data.sum())

    def test_custom_reduce_op(self):
        data = np.array([3.0, 9.0, 1.0, 7.0])
        rt, par = make_policy(chunks=2)
        best = transform_reduce(
            par, 4, lambda b, e: float(data[b:e].max()), reduce_op=max, init=-np.inf
        )
        assert best == 9.0

    def test_empty(self):
        assert transform_reduce(seq, 0, lambda b, e: 1.0, init=5.0) == 5.0


class TestScans:
    def test_inclusive(self):
        assert inclusive_scan([1, 2, 3]) == [1, 3, 6]

    def test_exclusive(self):
        assert exclusive_scan([1, 2, 3]) == [0, 1, 3]
        assert exclusive_scan([1, 2, 3], init=10) == [10, 11, 13]

    def test_empty(self):
        assert inclusive_scan([]) == []
        assert exclusive_scan([]) == []
