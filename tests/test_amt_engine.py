"""Discrete-event engine semantics."""

import pytest

from repro.amt.engine import Engine


class TestOrdering:
    def test_time_order(self):
        eng = Engine()
        log = []
        eng.post(2.0, lambda: log.append("b"))
        eng.post(1.0, lambda: log.append("a"))
        eng.run()
        assert log == ["a", "b"]
        assert eng.now == 2.0

    def test_fifo_for_simultaneous_events(self):
        eng = Engine()
        log = []
        for i in range(10):
            eng.post(1.0, lambda i=i: log.append(i))
        eng.run()
        assert log == list(range(10))

    def test_post_during_run(self):
        eng = Engine()
        log = []

        def first():
            log.append("first")
            eng.post(0.5, lambda: log.append("nested"))

        eng.post(1.0, first)
        eng.post(2.0, lambda: log.append("last"))
        eng.run()
        assert log == ["first", "nested", "last"]
        assert eng.now == 2.0

    def test_post_at_absolute(self):
        eng = Engine()
        eng.post_at(5.0, lambda: None)
        eng.run()
        assert eng.now == 5.0

    def test_post_into_past_rejected(self):
        eng = Engine()
        eng.post(1.0, lambda: eng.post_at(0.5, lambda: None))
        with pytest.raises(ValueError):
            eng.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Engine().post(-1.0, lambda: None)


class TestControl:
    def test_run_until(self):
        eng = Engine()
        log = []
        eng.post(1.0, lambda: log.append(1))
        eng.post(3.0, lambda: log.append(3))
        eng.run(until=2.0)
        assert log == [1]
        assert eng.now == 2.0
        eng.run()
        assert log == [1, 3]

    def test_max_events(self):
        eng = Engine()
        for _ in range(10):
            eng.post(1.0, lambda: None)
        eng.run(max_events=4)
        assert eng.events_processed == 4

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_reset(self):
        eng = Engine()
        eng.post(1.0, lambda: None)
        eng.run()
        eng.reset()
        assert eng.now == 0.0
        assert eng.empty()
        assert eng.events_processed == 0

    def test_not_reentrant(self):
        eng = Engine()
        errors = []

        def reenter():
            try:
                eng.run()
            except RuntimeError as exc:
                errors.append(exc)

        eng.post(1.0, reenter)
        eng.run()
        assert len(errors) == 1


class TestNonFiniteDelays:
    """NaN compares false both ways, so a NaN-keyed heap entry silently
    corrupts the heap invariant; the engine must reject it at post time."""

    @pytest.mark.parametrize("delay", [float("nan"), float("inf"), float("-inf")])
    def test_post_rejects_non_finite_delay(self, delay):
        eng = Engine()
        with pytest.raises(ValueError, match="non-finite"):
            eng.post(delay, lambda: None)
        assert eng.empty()  # nothing slipped into the queue

    @pytest.mark.parametrize("when", [float("nan"), float("inf")])
    def test_post_at_rejects_non_finite_time(self, when):
        eng = Engine()
        with pytest.raises(ValueError, match="non-finite"):
            eng.post_at(when, lambda: None)

    def test_finite_delays_still_accepted(self):
        eng = Engine()
        hits = []
        eng.post(0.0, lambda: hits.append("now"))
        eng.post(1e300, lambda: hits.append("later"))
        eng.run()
        assert hits == ["now", "later"]
