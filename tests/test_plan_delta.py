"""Delta-maintained plans are bit-identical to cold rebuilds.

Hypothesis sweeps drive random refine/coarsen sequences and assert,
array for array, that the incremental path of each plan layer — FmmPlan
(``update_plan``), HydroPlan (trace-cache delta rebuild through
``plan_for``), and the ghost bundle plan (trace-cache reuse after
``FaceTraceCache.invalidate``) — produces exactly the plan a cold build
would.  A final case runs the blast crosscheck with a plan cache on both
the serial and process backends: the cache-hit plan path must keep the
backends bit-identical.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import fill_gaussian, make_uniform_mesh
from repro.comms import adopt_arena, build_bundle_plan
from repro.core.plancache import PlanCache
from repro.gravity.plan import build_plan, update_plan
from repro.hydro.integrator import HydroIntegrator
from repro.hydro.plan import build_hydro_plan
from repro.octree.ghost import FaceTraceCache
from repro.octree.partition import sfc_partition
from repro.octree.regrid import RegridDelta

#: Attributes a structural plan comparison must skip: back-references to
#: the live mesh, uninitialized scratch buffers (np.empty allocations
#: whose bytes are meaningless until the first pack()/apply()), and
#: build-time caches whose *presence* varies by rebuild path while their
#: values are pure functions of the class key (P2P templates t1/t3 and
#: the chain-wide template_store — a delta chain may carry entries for
#: classes a one-shot cold build never met).
_SKIP_ATTRS = {
    "mesh_ref",
    "payload",
    "_payloads",
    "_active",
    "_fine_acc",
    "_fine_accs",
    "_fine_tmp",
    "_same_buf",
    "_coarse_buf",
    "_boundary_buf",
    "_fine_buf",
    "_splits",
    "_split_cache",
    "template_store",
    "t1",
    "t3",
}


def assert_plans_equal(a, b, path="plan"):
    """Recursive array-for-array equality over two plan object graphs."""
    assert type(a) is type(b), f"{path}: {type(a)} != {type(b)}"
    if isinstance(a, np.ndarray):
        assert a.dtype == b.dtype, f"{path}: dtype {a.dtype} != {b.dtype}"
        assert np.array_equal(a, b), f"{path}: arrays differ"
        return
    if isinstance(a, dict):
        assert sorted(map(repr, a)) == sorted(map(repr, b)), f"{path}: keys"
        for key in a:
            assert_plans_equal(a[key], b[key], f"{path}[{key!r}]")
        return
    if isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length {len(a)} != {len(b)}"
        for i, (xa, xb) in enumerate(zip(a, b)):
            assert_plans_equal(xa, xb, f"{path}[{i}]")
        return
    if isinstance(a, slice):
        assert a == b, f"{path}: {a} != {b}"
        return
    if hasattr(a, "__dict__") or hasattr(a, "__dataclass_fields__"):
        for name, value in sorted(vars(a).items()):
            if name in _SKIP_ATTRS:
                continue
            assert_plans_equal(value, getattr(b, name), f"{path}.{name}")
        return
    assert a == b, f"{path}: {a!r} != {b!r}"


def apply_ops(mesh, ops, max_level=3):
    """Resolve refine/derefine picks against the live mesh; return the
    exact :class:`RegridDelta` (or None if nothing changed)."""
    old_nodes = frozenset(mesh.nodes)
    old_leaves = frozenset(mesh.leaf_keys())
    changed = False
    for op, pick in ops:
        if op == "refine":
            candidates = sorted(k for k in mesh.leaf_keys() if k[0] < max_level)
            if not candidates:
                continue
            mesh.refine(candidates[pick % len(candidates)])
            changed = True
        else:
            candidates = []
            for key, node in sorted(mesh.nodes.items()):
                if node.is_leaf:
                    continue
                children = [mesh.nodes[k] for k in node.children_keys()]
                if all(c.is_leaf for c in children):
                    candidates.append(key)
            if not candidates:
                continue
            try:
                mesh.derefine(candidates[pick % len(candidates)])
            except ValueError:
                continue  # would break 2:1 balance
            changed = True
    if not changed:
        return None
    return RegridDelta.between(
        old_nodes, old_leaves, frozenset(mesh.nodes), frozenset(mesh.leaf_keys())
    )


@st.composite
def _mutation_sequences(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(["refine", "derefine"]), st.integers(0, 63)
            ),
            min_size=1,
            max_size=4,
        )
    )


class TestFmmDeltaEquivalence:
    @given(ops=_mutation_sequences())
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_update_plan_identical_to_cold(self, ops):
        # 64 leaves: small mutations stay under the cold-fraction cutoff,
        # so the delta path actually exercises (8 leaves would fall back).
        mesh = make_uniform_mesh(2, n=4)
        fill_gaussian(mesh)
        plan = build_plan(mesh, theta=0.5)
        if apply_ops(mesh, ops) is None:
            return
        updated = update_plan(plan, mesh, 0.5)
        cold = build_plan(mesh, theta=0.5)
        if updated is None:
            return  # cold-fraction fallback: safe by construction
        assert_plans_equal(updated, cold)


class TestHydroDeltaEquivalence:
    @given(ops=_mutation_sequences())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_plan_for_delta_identical_to_cold(self, ops):
        mesh = make_uniform_mesh(1, n=4)
        fill_gaussian(mesh)
        integ = HydroIntegrator(mesh)
        integ.plan_for(mesh)  # cold build populates the trace cache
        delta = apply_ops(mesh, ops)
        if delta is None:
            return
        integ.notify_regrid(delta)
        warm = integ.plan_for(mesh)
        cold = build_hydro_plan(mesh)  # reprolint: sanctioned-cold-build
        assert_plans_equal(warm.ghosts, cold.ghosts)
        assert warm.leaf_keys == cold.leaf_keys
        assert warm.fingerprint == cold.fingerprint
        assert warm.slot == cold.slot


class TestBundleDeltaEquivalence:
    @given(ops=_mutation_sequences(), nprocs=st.sampled_from([1, 2, 4]))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_trace_reuse_identical_to_cold(self, ops, nprocs):
        mesh = make_uniform_mesh(1, n=4)
        fill_gaussian(mesh)
        sfc_partition(mesh, nprocs)
        _, offsets = adopt_arena(mesh)
        cache = FaceTraceCache()
        build_bundle_plan(mesh, offsets, trace_cache=cache)
        delta = apply_ops(mesh, ops)
        if delta is None:
            return
        cache.invalidate(delta)
        sfc_partition(mesh, nprocs)
        _, offsets = adopt_arena(mesh)
        warm = build_bundle_plan(mesh, offsets, trace_cache=cache)
        cold = build_bundle_plan(mesh, offsets)
        assert_plans_equal(warm, cold)


class TestPlanCacheCrosscheck:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_blast_cache_hit_bit_identical(self, tmp_path, backend):
        """A second integrator over the same topology must serve its plan
        from the cache and step bit-identically to the cold-built one."""
        from repro.scenarios.blast import sedov_blast

        scenario = sedov_blast(levels=1)
        mesh_cold = scenario.mesh
        mesh_hit = sedov_blast(levels=1).mesh

        kwargs = {}
        if backend == "process":
            kwargs = {"backend": "process", "nprocs": 2}
        cold = HydroIntegrator(
            mesh_cold, eos=scenario.eos,
            plan_cache=PlanCache(tmp_path), **kwargs,
        )
        try:
            cold.step(1e-4)
        finally:
            cold.close()

        hit_cache = PlanCache(tmp_path)
        hit = HydroIntegrator(
            mesh_hit, eos=scenario.eos, plan_cache=hit_cache, **kwargs
        )
        try:
            hit.step(1e-4)
        finally:
            hit.close()
        if backend == "serial":
            # The process backend's plans live in the executor and never
            # consult the persistent cache; only assert hits on serial.
            assert hit_cache.stats.hits >= 1
        for key in sorted(mesh_cold.leaf_keys()):
            assert np.array_equal(
                mesh_cold.nodes[key].subgrid.data,
                mesh_hit.nodes[key].subgrid.data,
            ), key

    def test_crosscheck_hydro_with_plan_cache(self, tmp_path):
        """The full crosscheck battery case: blast, serial vs process,
        sharing one plan-cache directory — divergence raises."""
        from repro.core.crosscheck import crosscheck_hydro
        from repro.scenarios.blast import sedov_blast

        blast = sedov_blast(levels=1)
        result = crosscheck_hydro(
            blast.mesh, steps=2, nprocs=2, eos=blast.eos,
            plan_cache=tmp_path,
        )
        assert result.ok
        assert (tmp_path / "hydro").exists() or any(tmp_path.iterdir())
