"""AMR octree: sub-grids, nodes, mesh invariants, refinement properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.octree import AmrMesh, Field, NFIELDS, OctreeNode, SubGrid
from repro.util.morton import morton_encode3

from tests.conftest import fill_gaussian, make_uniform_mesh


class TestSubGrid:
    def test_shape(self):
        sg = SubGrid(n=8, ghost=2)
        assert sg.data.shape == (NFIELDS, 12, 12, 12)
        assert sg.m == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            SubGrid(n=1)
        with pytest.raises(ValueError):
            SubGrid(n=8, ghost=0)

    def test_interior_view_roundtrip(self):
        sg = SubGrid(4, 2)
        values = np.random.default_rng(0).random((4, 4, 4))
        sg.set_interior(Field.RHO, values)
        np.testing.assert_array_equal(sg.interior_view(Field.RHO), values)

    def test_set_interior_shape_check(self):
        sg = SubGrid(4, 2)
        with pytest.raises(ValueError):
            sg.set_interior(Field.RHO, np.zeros((3, 3, 3)))

    def test_integral(self):
        sg = SubGrid(4, 2)
        sg.set_interior(Field.RHO, np.full((4, 4, 4), 2.0))
        assert sg.integral(Field.RHO, cell_volume=0.5) == pytest.approx(64.0)

    def test_ghost_and_donor_slices_are_disjoint_bands(self):
        sg = SubGrid(8, 2)
        for axis in range(3):
            for side in (0, 1):
                ghost = sg.ghost_slices(axis, side)
                donor = sg.donor_slices(axis, side)
                # Ghost band lies outside the interior; donor inside.
                g = sg.ghost
                assert ghost[axis].start == (0 if side == 0 else g + sg.n)
                assert donor[axis].start >= g
                assert donor[axis].stop <= g + sg.n

    def test_extract_insert_roundtrip(self):
        sg = SubGrid(4, 2)
        band_idx = sg.ghost_slices(0, 0)
        band = np.random.default_rng(1).random((NFIELDS, 2, 4, 4))
        sg.insert(band_idx, band)
        np.testing.assert_array_equal(sg.extract(band_idx), band)

    def test_copy_independent(self):
        sg = SubGrid(4, 2)
        clone = sg.copy()
        clone.data[:] = 7.0
        assert (sg.data == 0).all()

    def test_face_bytes(self):
        sg = SubGrid(8, 2)
        assert sg.nbytes_face() == NFIELDS * 2 * 64 * 8


class TestNodeGeometry:
    def test_root_geometry(self):
        root = OctreeNode(0, 0, n=8, domain_size=2.0)
        assert root.node_size == 2.0
        assert root.dx == 0.25
        np.testing.assert_allclose(root.origin, [-1, -1, -1])
        np.testing.assert_allclose(root.center, [0, 0, 0])

    def test_child_geometry(self):
        child = OctreeNode(1, morton_encode3(1, 0, 1), n=8, domain_size=2.0)
        assert child.node_size == 1.0
        np.testing.assert_allclose(child.origin, [0, -1, 0])

    def test_cell_centers_within_node(self):
        node = OctreeNode(1, 0, n=8, domain_size=2.0)
        x, y, z = node.cell_centers()
        assert x.min() >= node.origin[0]
        assert x.max() <= node.origin[0] + node.node_size

    def test_parent_child_keys(self):
        node = OctreeNode(2, 13)
        assert node.parent_key == (1, 1)
        assert all(k[0] == 3 for k in node.children_keys())
        assert OctreeNode(0, 0).parent_key is None

    def test_octant(self):
        assert OctreeNode(1, 5).octant == 5

    def test_face_neighbor_coords_boundary(self):
        node = OctreeNode(1, 0)
        assert node.face_neighbor_coords(0, 0) is None
        assert node.face_neighbor_coords(0, 1) == (1, 0, 0)


class TestMeshRefinement:
    def test_single_refine(self):
        mesh = AmrMesh()
        children = mesh.refine((0, 0))
        assert len(children) == 8
        assert not mesh.root.is_leaf
        assert mesh.n_subgrids() == 8
        mesh.check_invariants()

    def test_refine_refined_rejected(self):
        mesh = AmrMesh()
        mesh.refine((0, 0))
        with pytest.raises(ValueError):
            mesh.refine((0, 0))

    def test_odd_subgrid_rejected(self):
        with pytest.raises(ValueError):
            AmrMesh(n=7)

    def test_balance_cascade(self):
        # Refining a deep corner drags coarser neighbours along.
        mesh = AmrMesh()
        mesh.refine((0, 0))
        mesh.refine((1, 0))
        mesh.refine((2, 0))
        mesh.check_invariants()
        assert mesh.max_level() == 3

    def test_cell_count(self):
        mesh = make_uniform_mesh(levels=1)
        assert mesh.n_cells() == 8 * 512

    def test_prolongation_conserves_mass(self):
        mesh = make_uniform_mesh(levels=1)
        fill_gaussian(mesh)
        before = mesh.total_mass()
        mesh.refine(mesh.leaf_keys()[0])
        assert mesh.total_mass() == pytest.approx(before, rel=1e-13)

    def test_derefine_restores_leaf(self):
        mesh = AmrMesh()
        mesh.refine((0, 0))
        fill_gaussian(mesh)
        mass = mesh.total_mass()
        mesh.derefine((0, 0))
        assert mesh.root.is_leaf
        assert mesh.n_subgrids() == 1
        assert mesh.total_mass() == pytest.approx(mass, rel=1e-13)
        mesh.check_invariants()

    def test_derefine_leaf_rejected(self):
        with pytest.raises(ValueError):
            AmrMesh().derefine((0, 0))

    def test_derefine_balance_guard(self):
        mesh = AmrMesh()
        mesh.refine((0, 0))
        mesh.refine((1, 0))  # level-2 leaves next to level-1 leaves
        with pytest.raises(ValueError):
            # Collapsing a level-1 neighbour of the refined node would put
            # level-1 next to... actually collapsing the refined node's
            # *parent* region: children are refined.
            mesh.derefine((0, 0))

    def test_refine_by_criterion(self):
        mesh = AmrMesh()

        def near_origin(node):
            return bool(np.all(np.abs(node.center) < 0.6))

        count = mesh.refine_by(near_origin, max_level=2)
        assert count > 0
        assert mesh.max_level() == 2
        mesh.check_invariants()

    def test_restrict_all_averages(self):
        mesh = make_uniform_mesh(levels=1)
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.full((8, 8, 8), 3.0))
        mesh.restrict_all()
        np.testing.assert_allclose(mesh.root.subgrid.interior_view(Field.RHO), 3.0)

    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=6))
    @settings(max_examples=25, deadline=None)
    def test_random_refinement_keeps_invariants(self, picks):
        """2:1 balance and full-interior invariants survive arbitrary
        refinement sequences."""
        mesh = AmrMesh()
        mesh.refine((0, 0))
        for pick in picks:
            leaves = sorted(mesh.leaf_keys())
            key = leaves[pick % len(leaves)]
            if key[0] < 4:
                mesh.refine(key)
        mesh.check_invariants()
        # Every pair of face-adjacent leaves differs by at most one level.
        for leaf in mesh.leaves():
            for axis in range(3):
                for side in (0, 1):
                    kind, other = mesh.face_neighbor(leaf, axis, side)
                    if kind == "same":
                        assert other.level == leaf.level
                    elif kind == "coarse":
                        assert other.level == leaf.level - 1
                    elif kind == "fine":
                        assert all(c.level == leaf.level + 1 for c in other)


class TestFaceNeighbors:
    def test_same_level(self):
        mesh = make_uniform_mesh(levels=1)
        leaf = mesh.nodes[(1, 0)]
        kind, other = mesh.face_neighbor(leaf, 0, 1)
        assert kind == "same"
        assert other.key == (1, 1)

    def test_boundary(self):
        mesh = make_uniform_mesh(levels=1)
        kind, other = mesh.face_neighbor(mesh.nodes[(1, 0)], 0, 0)
        assert kind == "boundary" and other is None

    def test_fine_returns_four_face_children(self):
        mesh = AmrMesh()
        mesh.refine((0, 0))
        mesh.refine((1, 1))  # refine the +x neighbour of (1, 0)
        kind, children = mesh.face_neighbor(mesh.nodes[(1, 0)], 0, 1)
        assert kind == "fine"
        assert len(children) == 4
        # All four children touch the shared face (their x-octant bit is 0).
        assert all((c.octant >> 0) & 1 == 0 for c in children)

    def test_coarse(self):
        mesh = AmrMesh()
        mesh.refine((0, 0))
        mesh.refine((1, 0))
        fine_leaf = mesh.nodes[(2, morton_encode3(1, 0, 0))]
        kind, other = mesh.face_neighbor(fine_leaf, 0, 1)
        assert kind == "coarse"
        assert other.level == 1
