"""Pack-generic kernels: ABI equivalence against NumPy references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simd import Pack, get_abi, vector_map
from repro.simd.kernels import (
    hll_mass_flux_kernel,
    hll_mass_flux_reference,
    minmod_kernel,
    minmod_reference,
    pressure_kernel,
    pressure_reference,
    run_hll_mass_flux,
    sound_speed_kernel,
    sound_speed_reference,
)

ABIS = ["scalar", "neon128", "avx2", "sve512"]
GAMMA = 5.0 / 3.0

rng = np.random.default_rng(99)


def states(n=37):
    return {
        "rho_l": rng.random(n) + 0.1,
        "u_l": rng.normal(size=n),
        "p_l": rng.random(n) + 0.01,
        "rho_r": rng.random(n) + 0.1,
        "u_r": rng.normal(size=n),
        "p_r": rng.random(n) + 0.01,
    }


class TestPressure:
    @pytest.mark.parametrize("abi_name", ABIS)
    def test_matches_reference(self, abi_name):
        eint = rng.normal(size=29) * 2.0  # includes negative lanes
        out = np.zeros_like(eint)
        vector_map(pressure_kernel(GAMMA), get_abi(abi_name), out, eint)
        np.testing.assert_array_equal(out, pressure_reference(eint, GAMMA))

    def test_negative_energy_clamped(self):
        eint = np.array([-1.0, 0.0, 1.0, 2.0])
        out = np.zeros(4)
        vector_map(pressure_kernel(GAMMA), get_abi("avx2"), out, eint)
        assert out[0] == 0.0 and out[1] == 0.0


class TestSoundSpeed:
    @pytest.mark.parametrize("abi_name", ABIS)
    def test_matches_reference(self, abi_name):
        rho = rng.random(23) + 0.05
        p = rng.normal(size=23)  # includes negative pressures
        out = np.zeros(23)
        vector_map(sound_speed_kernel(GAMMA), get_abi(abi_name), out, rho, p)
        np.testing.assert_allclose(out, sound_speed_reference(rho, p, GAMMA), rtol=1e-14)

    def test_vacuum_lane_is_finite(self):
        rho = np.array([0.0, 1.0, 1.0, 1.0])
        p = np.array([1.0, 1.0, 1.0, 1.0])
        out = np.zeros(4)
        vector_map(sound_speed_kernel(GAMMA), get_abi("avx2"), out, rho, p)
        assert np.isfinite(out).all()


class TestMinmodKernel:
    @pytest.mark.parametrize("abi_name", ABIS)
    def test_matches_reference(self, abi_name):
        a = rng.normal(size=31)
        b = rng.normal(size=31)
        out = np.zeros(31)
        vector_map(minmod_kernel, get_abi(abi_name), out, a, b)
        np.testing.assert_array_equal(out, minmod_reference(a, b))

    @given(
        st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                 min_size=8, max_size=8),
        st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                 min_size=8, max_size=8),
    )
    @settings(max_examples=40)
    def test_property_equivalence(self, a, b):
        abi = get_abi("sve512")
        result = minmod_kernel(Pack(abi, a), Pack(abi, b))
        np.testing.assert_array_equal(
            result.values, minmod_reference(np.array(a), np.array(b))
        )


class TestHllMassFlux:
    @pytest.mark.parametrize("abi_name", ABIS)
    def test_matches_reference_all_abis(self, abi_name):
        s = states()
        flux = run_hll_mass_flux(get_abi(abi_name), gamma=GAMMA, **s)
        expected = hll_mass_flux_reference(gamma=GAMMA, **s)
        np.testing.assert_allclose(flux, expected, rtol=1e-13)

    def test_matches_the_production_riemann_solver(self, eos):
        """The pack kernel and repro.hydro.riemann agree on the mass flux."""
        from repro.hydro.riemann import PRIM_KEYS, hll_flux
        from repro.octree.fields import Field

        s = states(16)
        zeros = np.zeros(16)
        wl = {k: zeros.copy() for k in PRIM_KEYS}
        wr = {k: zeros.copy() for k in PRIM_KEYS}
        wl.update(rho=s["rho_l"], vx=s["u_l"], p=s["p_l"])
        wr.update(rho=s["rho_r"], vx=s["u_r"], p=s["p_r"])
        from repro.hydro.eos import IdealGasEOS

        eos_g = IdealGasEOS(gamma=GAMMA)
        flux_prod, _ = hll_flux(wl, wr, 0, eos_g)
        flux_pack = run_hll_mass_flux(get_abi("sve512"), gamma=GAMMA, **s)
        np.testing.assert_allclose(flux_prod[Field.RHO], flux_pack, rtol=1e-12)

    def test_supersonic_branches(self):
        # Left-supersonic: flux equals the left flux on every ABI.
        n = 8
        s = dict(
            rho_l=np.full(n, 1.0), u_l=np.full(n, 10.0), p_l=np.full(n, 1.0),
            rho_r=np.full(n, 2.0), u_r=np.full(n, 10.0), p_r=np.full(n, 1.0),
        )
        flux = run_hll_mass_flux(get_abi("sve512"), gamma=GAMMA, **s)
        np.testing.assert_allclose(flux, 10.0)
        s_rev = dict(
            rho_l=np.full(n, 1.0), u_l=np.full(n, -10.0), p_l=np.full(n, 1.0),
            rho_r=np.full(n, 2.0), u_r=np.full(n, -10.0), p_r=np.full(n, 1.0),
        )
        flux = run_hll_mass_flux(get_abi("sve512"), gamma=GAMMA, **s_rev)
        np.testing.assert_allclose(flux, -20.0)

    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=20)
    def test_tail_lengths_all_agree(self, n):
        s = states(n)
        results = [
            run_hll_mass_flux(get_abi(abi), gamma=GAMMA, **s) for abi in ABIS
        ]
        for other in results[1:]:
            np.testing.assert_allclose(results[0], other, rtol=1e-13)
