"""Kokkos analog: views, policies, execution spaces, parallel dispatch."""

import numpy as np
import pytest

from repro.amt.future import when_all
from repro.amt.locality import Runtime
from repro.kokkos import (
    DeviceSpace,
    DeviceSpaceTag,
    HostSpace,
    HpxSpace,
    MDRangePolicy,
    RangePolicy,
    SerialSpace,
    View,
    deep_copy,
    parallel_for,
    parallel_for_async,
    parallel_reduce,
    parallel_scan,
    reset_transfer_counter,
)
from repro.kokkos.view import transfer_counter


class TestView:
    def test_construction(self):
        v = View("rho", (4, 4))
        assert v.shape == (4, 4)
        assert v.space is HostSpace
        assert (v.data == 0).all()

    def test_from_array_shares_storage(self):
        arr = np.arange(6.0)
        v = View.from_array("x", arr)
        v[0] = 99.0
        assert arr[0] == 99.0

    def test_indexing(self):
        v = View("x", (3,))
        v[1] = 5.0
        assert v[1] == 5.0

    def test_mirror(self):
        v = View("x", (2, 2), space=DeviceSpaceTag)
        m = v.mirror(HostSpace)
        assert m.space is HostSpace
        assert m.shape == v.shape

    def test_deep_copy_and_accounting(self):
        reset_transfer_counter()
        host = View("h", (8,))
        host.data[:] = 3.0
        dev = View("d", (8,), space=DeviceSpaceTag)
        deep_copy(dev, host)
        assert (dev.data == 3.0).all()
        assert transfer_counter["h2d_bytes"] == 64

    def test_reset_transfer_counter(self):
        deep_copy(View("d", (4,), space=DeviceSpaceTag), View("h", (4,)))
        assert transfer_counter["copies"] > 0
        reset_transfer_counter()
        assert transfer_counter == {"h2d_bytes": 0, "d2h_bytes": 0, "copies": 0}

    def test_deep_copy_shape_mismatch(self):
        with pytest.raises(ValueError):
            deep_copy(View("a", (2,)), View("b", (3,)))


class TestPolicies:
    def test_range_size(self):
        assert RangePolicy(3, 10).size == 7
        assert RangePolicy(3, 10, work_per_item=2.0).total_work == 14.0

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            RangePolicy(5, 2)

    def test_chunks_balanced(self):
        chunks = RangePolicy(0, 10).chunks(3)
        assert chunks == [(0, 4), (4, 7), (7, 10)]
        assert sum(e - b for b, e in chunks) == 10

    def test_chunks_more_than_items(self):
        assert len(RangePolicy(0, 3).chunks(8)) == 3

    def test_chunks_empty_range(self):
        assert RangePolicy(5, 5).chunks(4) == []

    def test_chunks_invalid(self):
        with pytest.raises(ValueError):
            RangePolicy(0, 4).chunks(0)

    def test_mdrange_flatten(self):
        policy = MDRangePolicy((2, 3, 4), work_per_item=7.0)
        flat = policy.flatten()
        assert flat.size == 24
        assert flat.work_per_item == 7.0

    def test_mdrange_negative_extent(self):
        with pytest.raises(ValueError):
            MDRangePolicy((2, -1))


class TestSerialSpace:
    def test_runs_inline(self):
        space = SerialSpace()
        data = np.zeros(10)

        def body(b, e):
            data[b:e] = 1.0

        parallel_for(space, RangePolicy(0, 10), body)
        assert (data == 1.0).all()
        assert space.stats.launches == 1

    def test_simd_lowers_cost(self):
        scalar = SerialSpace(simd_abi="scalar")
        sve = SerialSpace(simd_abi="sve512")
        policy = RangePolicy(0, 100, work_per_item=100.0)
        assert sve.item_cost(policy) < scalar.item_cost(policy)

    def test_non_vectorizable_ignores_simd(self):
        sve = SerialSpace(simd_abi="sve512")
        policy = RangePolicy(0, 10, vectorizable=False)
        scalar_policy = RangePolicy(0, 10, vectorizable=True)
        assert sve.item_cost(policy) > sve.item_cost(scalar_policy)


class TestHpxSpace:
    def make(self, tasks_per_kernel=4, workers=4):
        rt = Runtime(1, workers)
        return rt, HpxSpace(rt.here(), tasks_per_kernel=tasks_per_kernel)

    def test_functional_result(self):
        rt, space = self.make()
        data = np.zeros(100)

        def body(b, e):
            data[b:e] = np.arange(b, e)

        parallel_for(space, RangePolicy(0, 100), body)
        np.testing.assert_array_equal(data, np.arange(100))

    def test_task_splitting_counts(self):
        rt, space = self.make(tasks_per_kernel=4)
        parallel_for(space, RangePolicy(0, 100), lambda b, e: None)
        assert space.stats.launches == 1
        assert space.stats.tasks == 4

    def test_splitting_reduces_makespan(self):
        """Fig. 9's mechanism: K tasks on K workers beat one task."""
        rt1, one = self.make(tasks_per_kernel=1, workers=4)
        parallel_for(one, RangePolicy(0, 64, work_per_item=1e6), lambda b, e: None)
        t_one = rt1.engine.now

        rt4, four = self.make(tasks_per_kernel=4, workers=4)
        parallel_for(four, RangePolicy(0, 64, work_per_item=1e6), lambda b, e: None)
        assert rt4.engine.now == pytest.approx(t_one / 4.0)

    def test_empty_policy(self):
        rt, space = self.make()
        future = parallel_for_async(space, RangePolicy(0, 0), lambda b, e: None)
        assert future.is_ready()

    def test_invalid_tasks_per_kernel(self):
        rt = Runtime(1, 2)
        with pytest.raises(ValueError):
            HpxSpace(rt.here(), tasks_per_kernel=0)

    def test_async_returns_future(self):
        rt, space = self.make()
        hits = []
        future = parallel_for_async(
            space, RangePolicy(0, 8), lambda b, e: hits.append((b, e))
        )
        assert not future.is_ready()
        rt.run_until_ready(future)
        assert sum(e - b for b, e in hits) == 8


class TestParallelReduce:
    def test_sum_over_chunks(self):
        rt = Runtime(1, 4)
        space = HpxSpace(rt.here(), tasks_per_kernel=4)
        data = np.arange(100.0)
        total = parallel_reduce(
            space, RangePolicy(0, 100), lambda b, e: float(data[b:e].sum())
        )
        assert total == pytest.approx(data.sum())

    def test_custom_combine_and_init(self):
        space = SerialSpace()
        result = parallel_reduce(
            space,
            RangePolicy(0, 10),
            lambda b, e: float(e),
            combine=max,
            init=-1.0,
        )
        assert result == 10.0

    def test_serial_reduce(self):
        space = SerialSpace()
        data = np.ones(7)
        total = parallel_reduce(space, RangePolicy(0, 7), lambda b, e: float(data[b:e].sum()))
        assert total == 7.0


class TestParallelScan:
    def test_exclusive(self):
        np.testing.assert_array_equal(
            parallel_scan(np.array([1, 2, 3, 4])), [0, 1, 3, 6]
        )

    def test_inclusive(self):
        np.testing.assert_array_equal(
            parallel_scan(np.array([1, 2, 3, 4]), exclusive=False), [1, 3, 6, 10]
        )


class TestDeviceSpace:
    def test_aggregation_batches_launches(self):
        rt = Runtime(1, 2)
        dev = DeviceSpace(rt.here(), aggregation_size=4)
        futures = [
            parallel_for_async(dev, RangePolicy(0, 8, work_per_item=1e3), lambda b, e: None, kind="k")
            for _ in range(8)
        ]
        rt.run_until_ready(when_all(futures))
        assert dev.stats.launches == 2  # 8 kernels fused into 2 device launches
        assert dev.stats.items == 64

    def test_unbatched_flushes_via_engine(self):
        rt = Runtime(1, 2)
        dev = DeviceSpace(rt.here(), aggregation_size=16)
        future = parallel_for_async(dev, RangePolicy(0, 8), lambda b, e: None)
        rt.run_until_ready(future)
        assert dev.stats.launches == 1

    def test_launch_latency_dominates_small_kernels(self):
        rt = Runtime(1, 2)
        dev = DeviceSpace(rt.here(), launch_latency_s=1.0, flops_per_second=1e15)
        future = parallel_for_async(dev, RangePolicy(0, 4, work_per_item=1.0), lambda b, e: None)
        rt.run_until_ready(future)
        assert rt.engine.now >= 1.0

    def test_streams_parallelise_launches(self):
        def run(n_streams):
            rt = Runtime(1, 2)
            dev = DeviceSpace(
                rt.here(), n_streams=n_streams, launch_latency_s=0.0,
                flops_per_second=1e6, aggregation_size=1,
            )
            futures = [
                parallel_for_async(dev, RangePolicy(0, 10, work_per_item=1e5), lambda b, e: None)
                for _ in range(4)
            ]
            rt.run_until_ready(when_all(futures))
            return rt.engine.now

        assert run(4) < run(1)

    def test_invalid_aggregation(self):
        rt = Runtime(1, 1)
        with pytest.raises(ValueError):
            DeviceSpace(rt.here(), aggregation_size=0)

    def test_functor_executes_with_results(self):
        rt = Runtime(1, 1)
        dev = DeviceSpace(rt.here())
        data = np.zeros(16)

        def body(b, e):
            data[b:e] += 2.0

        rt.run_until_ready(parallel_for_async(dev, RangePolicy(0, 16), body))
        assert (data == 2.0).all()


# -- array backends ----------------------------------------------------------

from repro.analysis.spacesan import sanitizer_mode  # noqa: E402
from repro.kokkos import (  # noqa: E402
    BackendUnavailable,
    available_backends,
    backend_for_space,
    get_backend,
    jit_backend_name,
    registered_backends,
    sanctioned_crossing,
    set_space_backend,
    space_backend_map,
)

#: Every registered backend; the optional ones skip when not installed.
ALL_BACKENDS = [
    pytest.param(
        name,
        marks=pytest.mark.skipif(
            name not in available_backends(),
            reason=f"array backend {name} not installed",
        ),
    )
    for name in registered_backends()
]


class TestBackendRegistry:
    def test_registered_names(self):
        assert {"numpy", "pyjit", "numba", "cupy", "jax"} <= set(
            registered_backends()
        )

    def test_always_available(self):
        assert {"numpy", "pyjit"} <= set(available_backends())

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError):
            get_backend("fortran")

    def test_unavailable_backend_raises(self):
        missing = sorted(set(registered_backends()) - set(available_backends()))
        if not missing:
            pytest.skip("every registered backend is installed here")
        with pytest.raises(BackendUnavailable):
            get_backend(missing[0])

    def test_jit_backend_name_prefers_numba(self):
        expected = "numba" if "numba" in available_backends() else "pyjit"
        assert jit_backend_name() == expected

    def test_specialize_compiles_once(self):
        b = get_backend("pyjit")
        b.cache_clear()
        before = b.compile_count
        k1 = b.specialize("t.key", lambda: (lambda x: x + 1))
        k2 = b.specialize("t.key", lambda: (lambda x: x + 2))
        assert k1 is k2  # cache hit: second factory never compiled
        assert b.compile_count == before + 1
        b.cache_clear()
        k3 = b.specialize("t.key", lambda: (lambda x: x + 3))
        assert k3(1) == 4
        assert b.compile_count == before + 2

    def test_kernel_table_builds_once(self):
        b = get_backend("pyjit")
        b.cache_clear()
        built = []

        def builder(compile_fn):
            built.append(1)
            return {"f": compile_fn(lambda x: 2 * x)}

        t1 = b.kernel_table("t.table", builder)
        t2 = b.kernel_table("t.table", builder)
        assert t1 is t2 and built == [1]
        assert t1["f"](3) == 6

    def test_space_backend_routing(self):
        assert space_backend_map()["Host"] == "numpy"
        assert backend_for_space(HostSpace).name == "numpy"
        with pytest.raises(KeyError):
            set_space_backend("Device", "no-such-backend")
        set_space_backend("Device", "pyjit")
        try:
            assert backend_for_space(DeviceSpaceTag).name == "pyjit"
            assert View("d", (2,), space=DeviceSpaceTag).backend.name == "pyjit"
        finally:
            set_space_backend("Device", "numpy")


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestBackendStorage:
    def test_zeros_roundtrip(self, name):
        b = get_backend(name)
        arr = b.zeros((3, 2))
        host = b.to_numpy(arr)
        assert host.shape == (3, 2) and (host == 0).all()

    def test_from_numpy_roundtrip(self, name):
        b = get_backend(name)
        src = np.arange(6.0).reshape(2, 3)
        np.testing.assert_array_equal(b.to_numpy(b.from_numpy(src)), src)

    def test_view_owns_backend_storage(self, name):
        v = View("x", (4,), backend=get_backend(name))
        assert v.backend.name == name
        assert v.xp is get_backend(name).module

    def test_deep_copy_from_numpy_view(self, name):
        reset_transfer_counter()
        src = View("src", (5,))
        src.data[:] = 7.0
        dst = View("dst", (5,), backend=get_backend(name))
        deep_copy(dst, src)
        assert (get_backend(name).to_numpy(dst._data) == 7.0).all()
        assert transfer_counter["copies"] == 1

    def test_deep_copy_to_numpy_view(self, name):
        b = get_backend(name)
        src = View("src", (4,), backend=b)
        with sanctioned_crossing():
            b.copy_into(src._data, np.full(4, 2.5))
        dst = View("dst", (4,))
        deep_copy(dst, src)
        assert (dst.data == 2.5).all()


class TestMirror:
    def test_mirror_label_does_not_accumulate(self):
        v = View("x", (2, 2), space=DeviceSpaceTag)
        m1 = v.mirror(HostSpace)
        m2 = m1.mirror(DeviceSpaceTag)
        assert m1.label == "x_mirror"
        assert m2.label == "x_mirror"  # not "x_mirror_mirror"

    def test_mirror_preserves_dtype(self):
        v = View("x", (3,), dtype=np.float32)
        m = v.mirror(DeviceSpaceTag)
        assert m.dtype == np.float32

    def test_mirror_zero_fills_by_default(self):
        v = View("x", (4,))
        v.data[:] = 9.0
        assert (v.mirror(DeviceSpaceTag)._data == 0.0).all()

    def test_mirror_copy_transfers(self):
        reset_transfer_counter()
        v = View("x", (4,))
        v.data[:] = 9.0
        m = v.mirror(DeviceSpaceTag, copy=True)
        assert (np.asarray(m._data) == 9.0).all()
        assert transfer_counter["h2d_bytes"] == 32


class TestDeepCopyDtype:
    def test_dtype_mismatch_raises(self):
        dst = View("a", (4,), dtype=np.float32)
        src = View("b", (4,), dtype=np.float64)
        with pytest.raises(ValueError, match="dtype mismatch"):
            deep_copy(dst, src)

    def test_same_dtype_passes(self):
        dst = View("a", (4,), dtype=np.float32)
        src = View("b", (4,), dtype=np.float32)
        deep_copy(dst, src)  # no raise


class TestSpaceSanitizer:
    def test_raw_data_grab_reported(self):
        v = View("dev", (4,), space=DeviceSpaceTag)
        with sanitizer_mode(collect=True) as findings:
            _ = v.data
        assert any(f.op == "raw-data" for f in findings)

    def test_cross_backend_ufunc_reported(self):
        v = View("dev", (4,), space=DeviceSpaceTag)
        leaked = v._data  # smuggled storage, no .data report
        with sanitizer_mode(collect=True) as findings:
            np.sqrt(leaked)
        assert any(
            f.op == "ufunc" and f.label == "dev" for f in findings
        )

    def test_grab_then_ufunc_reports_both(self):
        v = View("dev", (4,), space=DeviceSpaceTag)
        with sanitizer_mode(collect=True) as findings:
            np.abs(v.data)
        assert {f.op for f in findings} >= {"raw-data", "ufunc"}

    def test_sanctioned_crossing_suppresses_ufunc(self):
        v = View("dev", (4,), space=DeviceSpaceTag)
        leaked = v._data
        with sanitizer_mode(collect=True) as findings:
            with sanctioned_crossing():
                np.sqrt(leaked)
        assert not [f for f in findings if f.op == "ufunc"]

    def test_host_view_never_reports(self):
        v = View("host", (4,))
        with sanitizer_mode(collect=True) as findings:
            np.sqrt(v.data)
        assert findings == []
