"""Structural claims the paper makes about the code, checked directly."""

import numpy as np
import pytest

from repro.distsim import RunConfig
from repro.machines import FUGAKU
from repro.scenarios.spec import ScenarioSpec


class TestKernelLaunchCounts:
    def test_more_than_ten_tasks_per_subgrid_per_step(self):
        """Paper SIV-B: 'we usually have multiple (> 10) kernel launches per
        sub-grid in each time-step.'  The distributed functional driver's
        task graph reproduces that granularity."""
        from tests.test_distributed_driver import build_mesh
        from repro.core.distributed import DistributedHydroDriver

        mesh, eos = build_mesh()
        driver = DistributedHydroDriver(
            mesh, eos, config=RunConfig(machine=FUGAKU, nodes=2)
        )
        result = driver.step(1e-3)
        tasks_per_subgrid = result.tasks_completed / mesh.n_subgrids()
        assert tasks_per_subgrid > 10

    def test_spec_encodes_the_claim(self):
        spec = ScenarioSpec(name="x", n_subgrids=10, max_level=2)
        assert spec.kernels_per_subgrid_per_step > 10


class TestNonAdaptiveTimestep:
    def test_all_levels_advance_with_one_dt(self):
        """Paper SIV-C: 'Octo-Tiger does not use adaptive time stepping' —
        the global dt is the minimum over all leaves, and every leaf
        advances by exactly that dt."""
        from repro.hydro import HydroIntegrator, IdealGasEOS, global_timestep
        from repro.octree import AmrMesh, Field

        eos = IdealGasEOS()
        mesh = AmrMesh(n=8, ghost=2, domain_size=2.0)
        mesh.refine((0, 0))
        mesh.refine((1, 0))  # two leaf levels
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.ones((8, 8, 8)))
            leaf.subgrid.set_interior(Field.EGAS, np.full((8, 8, 8), 2.5))
            leaf.subgrid.set_interior(
                Field.TAU, eos.tau_from_eint(np.full((8, 8, 8), 2.5))
            )
        dt_global = global_timestep(mesh, eos)
        # The fine level's own CFL limit is half the coarse one's; the
        # global dt equals the fine limit.
        from repro.hydro import cfl_timestep_subgrid

        fine = [l for l in mesh.leaves() if l.level == 2][0]
        coarse = [l for l in mesh.leaves() if l.level == 1][0]
        assert dt_global == pytest.approx(
            cfl_timestep_subgrid(fine.subgrid, fine.dx, eos)
        )
        assert dt_global < cfl_timestep_subgrid(coarse.subgrid, coarse.dx, eos)
        integ = HydroIntegrator(mesh, eos)
        used = integ.step()
        assert used == pytest.approx(dt_global)
        assert integ.time == pytest.approx(dt_global)


class TestSubgridSizeEight:
    def test_default_n_is_eight(self):
        """Paper SIV-C: 'N is typically 8'."""
        from repro.octree import AmrMesh, SubGrid
        from repro.util.config import Config

        assert AmrMesh().n == 8
        assert SubGrid().n == 8
        assert Config()["mesh.subgrid_n"] == 8


@pytest.mark.slow
class TestBinaryOrbitStability:
    def test_dwd_omega_stable_over_steps(self):
        """The SCF binary in its co-rotating frame stays near-stationary:
        the inferred orbital frequency (from the tracer COMs) drifts little
        over several steps."""
        from repro.core import OctoTigerSim
        from repro.octree import Field
        from repro.scenarios import dwd_scenario

        scenario = dwd_scenario(level=2, scf_grid=32)
        sim = OctoTigerSim(
            scenario.mesh, eos=scenario.eos, omega=scenario.omega, nodes=2
        )

        def star_separation():
            coms = []
            for tracer in (Field.FRAC1, Field.FRAC2):
                weighted = np.zeros(3)
                total = 0.0
                for leaf in scenario.mesh.leaves():
                    x, y, z = leaf.cell_centers()
                    w = leaf.subgrid.interior_view(tracer)
                    v = leaf.cell_volume
                    weighted += np.array(
                        [(w * x).sum(), (w * y).sum(), (w * z).sum()]
                    ) * v
                    total += float(w.sum()) * v
                coms.append(weighted / total)
            return float(np.linalg.norm(coms[0] - coms[1]))

        sep0 = star_separation()
        sim.run(3)
        sep1 = star_separation()
        # The separation changes by well under 10% over a few steps.
        assert abs(sep1 - sep0) / sep0 < 0.1
