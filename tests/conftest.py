"""Shared fixtures: small meshes and common solver setups.

Mesh-building is the expensive part of many tests, so the heavier fixtures
are session-scoped and treated as read-only; tests that mutate state build
their own meshes.

Also provides a fallback for ``@pytest.mark.timeout`` when the
``pytest-timeout`` plugin is not installed: the chaos tests in
``test_resilience.py`` must *never hang* (that is the property under
test), so the marker has to mean something even in minimal environments.
The shim arms ``SIGALRM`` around the test call and fails the test with a
``Failed`` error when the alarm fires.  When the real plugin is present
it takes precedence and the shim stays unregistered.
"""

from __future__ import annotations

import math
import signal

import numpy as np
import pytest

from repro.hydro.eos import IdealGasEOS
from repro.octree.fields import Field
from repro.octree.mesh import AmrMesh


def pytest_configure(config: pytest.Config) -> None:
    if config.pluginmanager.hasplugin("timeout"):
        return  # the real pytest-timeout plugin handles the marker
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than the given "
        "wall-clock budget (SIGALRM fallback shim; superseded by the "
        "pytest-timeout plugin when installed)",
    )
    if hasattr(signal, "SIGALRM"):
        config.pluginmanager.register(_TimeoutShim(), "repro-timeout-shim")


class _TimeoutShim:
    """Minimal pytest-timeout stand-in: one SIGALRM per marked test."""

    @staticmethod
    def _seconds(item: pytest.Item) -> float:
        marker = item.get_closest_marker("timeout")
        if marker is None:
            return 0.0
        if marker.args:
            return float(marker.args[0])
        return float(marker.kwargs.get("timeout", 0.0))

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(self, item: pytest.Item):  # noqa: ANN201
        seconds = self._seconds(item)
        if seconds <= 0.0:
            yield
            return

        def on_alarm(signum, frame):  # noqa: ANN001
            raise pytest.fail.Exception(
                f"timeout: test exceeded {seconds:g}s wall clock"
            )

        previous = signal.signal(signal.SIGALRM, on_alarm)
        signal.alarm(int(math.ceil(seconds)))
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)


def make_uniform_mesh(levels: int = 1, n: int = 8, domain: float = 2.0) -> AmrMesh:
    mesh = AmrMesh(n=n, ghost=2, domain_size=domain)
    for _ in range(levels):
        for key in list(mesh.leaf_keys()):
            mesh.refine(key)
    return mesh


def fill_gaussian(mesh: AmrMesh, center=(0.2, -0.1, 0.0), width: float = 0.05) -> None:
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        r2 = (x - center[0]) ** 2 + (y - center[1]) ** 2 + (z - center[2]) ** 2
        leaf.subgrid.set_interior(Field.RHO, np.exp(-r2 / width))
    mesh.restrict_all()


@pytest.fixture(scope="session")
def gaussian_mesh_l2() -> AmrMesh:
    """Uniform level-2 mesh (64 sub-grids) with an off-centre Gaussian blob.

    Session-scoped and read-only: used by the gravity accuracy tests.
    """
    mesh = make_uniform_mesh(levels=2)
    fill_gaussian(mesh)
    return mesh


@pytest.fixture(scope="session")
def direct_reference(gaussian_mesh_l2):
    """Exact potential/acceleration of the Gaussian mesh (computed once)."""
    from repro.gravity.direct import direct_sum

    return direct_sum(gaussian_mesh_l2)


@pytest.fixture()
def eos() -> IdealGasEOS:
    return IdealGasEOS(gamma=1.4)
