"""Shared fixtures: small meshes and common solver setups.

Mesh-building is the expensive part of many tests, so the heavier fixtures
are session-scoped and treated as read-only; tests that mutate state build
their own meshes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hydro.eos import IdealGasEOS
from repro.octree.fields import Field
from repro.octree.mesh import AmrMesh


def make_uniform_mesh(levels: int = 1, n: int = 8, domain: float = 2.0) -> AmrMesh:
    mesh = AmrMesh(n=n, ghost=2, domain_size=domain)
    for _ in range(levels):
        for key in list(mesh.leaf_keys()):
            mesh.refine(key)
    return mesh


def fill_gaussian(mesh: AmrMesh, center=(0.2, -0.1, 0.0), width: float = 0.05) -> None:
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        r2 = (x - center[0]) ** 2 + (y - center[1]) ** 2 + (z - center[2]) ** 2
        leaf.subgrid.set_interior(Field.RHO, np.exp(-r2 / width))
    mesh.restrict_all()


@pytest.fixture(scope="session")
def gaussian_mesh_l2() -> AmrMesh:
    """Uniform level-2 mesh (64 sub-grids) with an off-centre Gaussian blob.

    Session-scoped and read-only: used by the gravity accuracy tests.
    """
    mesh = make_uniform_mesh(levels=2)
    fill_gaussian(mesh)
    return mesh


@pytest.fixture(scope="session")
def direct_reference(gaussian_mesh_l2):
    """Exact potential/acceleration of the Gaussian mesh (computed once)."""
    from repro.gravity.direct import direct_sum

    return direct_sum(gaussian_mesh_l2)


@pytest.fixture()
def eos() -> IdealGasEOS:
    return IdealGasEOS(gamma=1.4)
