"""Checkpoint series management and driver restart."""

import numpy as np
import pytest

from repro.ioutil import CheckpointSeries
from repro.octree import AmrMesh

from tests.conftest import fill_gaussian, make_uniform_mesh


def small_mesh():
    mesh = AmrMesh(n=4, ghost=2)
    mesh.refine((0, 0))
    fill_gaussian(mesh)
    return mesh


class TestSeries:
    def test_write_and_list(self, tmp_path):
        series = CheckpointSeries(tmp_path / "out")
        mesh = small_mesh()
        series.write(mesh, step=3, time=0.1)
        series.write(mesh, step=10, time=0.5)
        assert series.steps() == [3, 10]
        assert series.latest_step() == 10

    def test_load_latest(self, tmp_path):
        series = CheckpointSeries(tmp_path / "out")
        mesh = small_mesh()
        series.write(mesh, step=1, time=0.1)
        series.write(mesh, step=2, time=0.2)
        restored, meta = series.load_latest()
        assert meta["step"] == 2
        assert meta["time"] == 0.2
        assert restored.n_subgrids() == mesh.n_subgrids()

    def test_load_missing_step(self, tmp_path):
        series = CheckpointSeries(tmp_path / "out")
        with pytest.raises(FileNotFoundError):
            series.load(5)
        with pytest.raises(FileNotFoundError):
            series.load_latest()

    def test_prune_keeps_newest(self, tmp_path):
        series = CheckpointSeries(tmp_path / "out")
        mesh = small_mesh()
        for step in (1, 2, 3, 4, 5):
            series.write(mesh, step=step)
        removed = series.prune(keep_last=2)
        assert removed == 3
        assert series.steps() == [4, 5]

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointSeries(tmp_path, prefix="a/b")
        series = CheckpointSeries(tmp_path / "out")
        with pytest.raises(ValueError):
            series.path_for(-1)
        with pytest.raises(ValueError):
            series.prune(0)

    def test_foreign_files_ignored(self, tmp_path):
        series = CheckpointSeries(tmp_path / "out")
        (tmp_path / "out" / "notes.txt").write_text("hi")
        (tmp_path / "out" / "other_000001.npz").write_bytes(b"")
        assert series.steps() == []


@pytest.mark.slow
class TestDriverRestart:
    def test_save_and_resume(self, tmp_path):
        from repro.core import OctoTigerSim
        from repro.scenarios import rotating_star

        scenario = rotating_star(level=2, scf_grid=32)
        sim = OctoTigerSim(
            scenario.mesh, eos=scenario.eos, omega=scenario.omega, nodes=2
        )
        sim.step(dt=1e-3)
        path = sim.save_checkpoint(tmp_path / "run")

        resumed = OctoTigerSim.from_checkpoint(path, eos=scenario.eos, nodes=2)
        assert resumed.integrator.time == pytest.approx(1e-3)
        assert resumed.integrator.steps_taken == 1
        assert resumed.integrator.omega == pytest.approx(scenario.omega)

        # Both branches take the same next step and agree.
        sim.step(dt=1e-3)
        resumed.step(dt=1e-3)
        from repro.octree import Field

        for key in scenario.mesh.leaf_keys():
            np.testing.assert_allclose(
                resumed.mesh.nodes[key].subgrid.interior_view(Field.RHO),
                scenario.mesh.nodes[key].subgrid.interior_view(Field.RHO),
                rtol=1e-12,
            )
