"""Cross-module algebraic invariants (property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hydro.eos import IdealGasEOS
from repro.hydro.riemann import PRIM_KEYS, hll_flux
from repro.octree import AmrMesh, Field
from repro.octree.ghost import fill_all_ghosts
from repro.octree.partition import sfc_partition

from tests.conftest import fill_gaussian, make_uniform_mesh

rho_s = st.floats(min_value=0.01, max_value=100.0)
v_s = st.floats(min_value=-50.0, max_value=50.0)
p_s = st.floats(min_value=1e-6, max_value=100.0)


class TestGhostExchangeProperties:
    def test_fill_is_idempotent(self):
        """Ghost filling reads interiors only, so repeating it is identity."""
        mesh = make_uniform_mesh(levels=1)
        fill_gaussian(mesh)
        fill_all_ghosts(mesh)
        snapshot = {
            k: mesh.nodes[k].subgrid.data.copy() for k in mesh.leaf_keys()
        }
        fill_all_ghosts(mesh)
        for key, data in snapshot.items():
            np.testing.assert_array_equal(mesh.nodes[key].subgrid.data, data)

    def test_fill_preserves_interiors(self):
        mesh = make_uniform_mesh(levels=1)
        fill_gaussian(mesh)
        before = {
            k: mesh.nodes[k].subgrid.interior_view().copy()
            for k in mesh.leaf_keys()
        }
        fill_all_ghosts(mesh)
        for key, data in before.items():
            np.testing.assert_array_equal(
                mesh.nodes[key].subgrid.interior_view(), data
            )


class TestRefinementAlgebra:
    def test_prolong_then_restrict_is_identity(self):
        """Constant prolongation followed by 2x2x2 restriction recovers the
        parent exactly (both are conservative)."""
        mesh = AmrMesh(n=8, ghost=2)
        rng = np.random.default_rng(5)
        mesh.root.subgrid.set_interior(Field.RHO, rng.random((8, 8, 8)))
        parent_before = mesh.root.subgrid.interior_view(Field.RHO).copy()
        mesh.refine((0, 0))
        mesh.restrict_all()
        np.testing.assert_allclose(
            mesh.root.subgrid.interior_view(Field.RHO), parent_before, atol=1e-15
        )

    def test_derefine_after_refine_is_identity(self):
        mesh = AmrMesh(n=8, ghost=2)
        rng = np.random.default_rng(6)
        for f in Field:
            mesh.root.subgrid.set_interior(f, rng.random((8, 8, 8)))
        before = mesh.root.subgrid.interior_view().copy()
        mesh.refine((0, 0))
        mesh.derefine((0, 0))
        np.testing.assert_allclose(
            mesh.root.subgrid.interior_view(), before, atol=1e-15
        )


class TestHllConsistency:
    @given(rho=rho_s, v=v_s, p=p_s)
    @settings(max_examples=60, deadline=None)
    def test_flux_consistency(self, rho, v, p):
        """F(W, W) equals the exact physical flux of W — the consistency
        condition every approximate Riemann solver must satisfy."""
        eos = IdealGasEOS(gamma=1.4)
        shape = (2,)
        w = {k: np.zeros(shape) for k in PRIM_KEYS}
        w["rho"] = np.full(shape, rho)
        w["vx"] = np.full(shape, v)
        w["p"] = np.full(shape, p)
        flux, _ = hll_flux(w, w, 0, eos)
        assert flux[Field.RHO][0] == pytest.approx(rho * v, rel=1e-12, abs=1e-12)
        assert flux[Field.SX][0] == pytest.approx(rho * v * v + p, rel=1e-12)
        e = p / 0.4 + 0.5 * rho * v * v
        assert flux[Field.EGAS][0] == pytest.approx((e + p) * v, rel=1e-11, abs=1e-11)


class TestPartitionProperties:
    @given(n_loc=st.integers(min_value=1, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_every_leaf_assigned_within_range(self, n_loc):
        mesh = make_uniform_mesh(levels=1)
        assignment = sfc_partition(mesh, n_loc)
        assert len(assignment) == 8
        assert all(0 <= loc < n_loc for loc in assignment.values())

    def test_deterministic(self):
        mesh1 = make_uniform_mesh(levels=2)
        mesh2 = make_uniform_mesh(levels=2)
        assert sfc_partition(mesh1, 5) == sfc_partition(mesh2, 5)


class TestPowerProperties:
    @given(
        u1=st.floats(min_value=0, max_value=1),
        u2=st.floats(min_value=0, max_value=1),
    )
    @settings(max_examples=40)
    def test_monotone_in_utilization(self, u1, u2):
        from repro.machines import FUGAKU

        lo, hi = sorted((u1, u2))
        assert FUGAKU.power.node_power(lo) <= FUGAKU.power.node_power(hi) + 1e-12


class TestSpecProperties:
    @given(subgrids=st.integers(min_value=1, max_value=10**8))
    @settings(max_examples=40)
    def test_min_nodes_sufficient_and_tight(self, subgrids):
        from repro.scenarios.spec import ScenarioSpec

        spec = ScenarioSpec(name="p", n_subgrids=subgrids, max_level=5)
        mem = 28e9
        nodes = spec.min_nodes(mem)
        assert nodes * mem >= spec.memory_bytes
        if nodes > 1:
            assert (nodes // 2) * mem < spec.memory_bytes


class TestSimdSelectProperties:
    @given(st.lists(st.floats(allow_nan=False, min_value=-1e6, max_value=1e6),
                    min_size=8, max_size=8))
    @settings(max_examples=40)
    def test_select_same_both_sides_is_identity(self, values):
        from repro.simd import Pack, get_abi, select

        abi = get_abi("sve512")
        p = Pack(abi, values)
        blended = select(p > 0.0, p, p)
        np.testing.assert_array_equal(blended.values, p.values)
