"""Morton code unit and property tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.morton import (
    FACE_OFFSETS,
    NEIGHBOR_OFFSETS,
    morton_children,
    morton_decode3,
    morton_encode3,
    morton_encode3_array,
    morton_level_offset,
    morton_neighbors,
    morton_parent,
)

coords = st.integers(min_value=0, max_value=(1 << 20) - 1)


class TestEncodeDecode:
    def test_origin(self):
        assert morton_encode3(0, 0, 0) == 0

    def test_unit_vectors(self):
        assert morton_encode3(1, 0, 0) == 0b001
        assert morton_encode3(0, 1, 0) == 0b010
        assert morton_encode3(0, 0, 1) == 0b100

    def test_known_value(self):
        # x=3 (11), y=1 (01), z=2 (10): bits interleave z1 y1 x1 z0 y0 x0.
        assert morton_encode3(3, 1, 2) == 0b101011

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            morton_encode3(-1, 0, 0)
        with pytest.raises(ValueError):
            morton_decode3(-5)

    @given(coords, coords, coords)
    def test_round_trip(self, x, y, z):
        assert morton_decode3(morton_encode3(x, y, z)) == (x, y, z)

    @given(coords, coords, coords)
    def test_monotone_in_each_axis_at_origin(self, x, y, z):
        # Encoding is injective: two distinct coordinate triples never share
        # a code (checked via the round trip plus strict ordering on one).
        code = morton_encode3(x, y, z)
        if x > 0:
            assert morton_encode3(x - 1, y, z) != code

    @given(st.lists(st.tuples(coords, coords, coords), min_size=1, max_size=64))
    def test_vectorised_matches_scalar(self, pts):
        xs = np.array([p[0] for p in pts])
        ys = np.array([p[1] for p in pts])
        zs = np.array([p[2] for p in pts])
        vec = morton_encode3_array(xs, ys, zs)
        for i, (x, y, z) in enumerate(pts):
            assert int(vec[i]) == morton_encode3(x, y, z)

    def test_vectorised_range_check(self):
        with pytest.raises(ValueError):
            morton_encode3_array(np.array([1 << 21]), np.array([0]), np.array([0]))


class TestHierarchy:
    @given(coords, coords, coords)
    def test_parent_of_children(self, x, y, z):
        code = morton_encode3(x, y, z)
        for child in morton_children(code):
            assert morton_parent(child) == code

    def test_children_are_distinct_and_ordered(self):
        kids = morton_children(5)
        assert kids == sorted(kids)
        assert len(set(kids)) == 8

    @given(coords, coords, coords)
    def test_parent_halves_coordinates(self, x, y, z):
        parent = morton_parent(morton_encode3(x, y, z))
        assert morton_decode3(parent) == (x // 2, y // 2, z // 2)

    def test_level_offset_values(self):
        assert morton_level_offset(0) == 0
        assert morton_level_offset(1) == 1
        assert morton_level_offset(2) == 9
        assert morton_level_offset(3) == 73

    def test_level_offset_negative(self):
        with pytest.raises(ValueError):
            morton_level_offset(-1)


class TestNeighbors:
    def test_corner_has_seven_neighbors(self):
        # The corner octant of a level-1 grid touches 7 of the 8 octants.
        assert len(morton_neighbors(0, 1)) == 7

    def test_interior_has_26(self):
        code = morton_encode3(1, 1, 1)
        assert len(morton_neighbors(code, 2)) == 26

    def test_faces_only(self):
        code = morton_encode3(1, 1, 1)
        assert len(morton_neighbors(code, 2, faces_only=True)) == 6

    def test_level0_has_none(self):
        assert morton_neighbors(0, 0) == []

    @given(st.integers(min_value=1, max_value=5), coords, coords, coords)
    def test_neighbors_in_bounds_and_adjacent(self, level, x, y, z):
        n = 1 << level
        x, y, z = x % n, y % n, z % n
        code = morton_encode3(x, y, z)
        for ncode in morton_neighbors(code, level):
            nx, ny, nz = morton_decode3(ncode)
            assert 0 <= nx < n and 0 <= ny < n and 0 <= nz < n
            assert max(abs(nx - x), abs(ny - y), abs(nz - z)) == 1

    def test_offset_tables(self):
        assert len(NEIGHBOR_OFFSETS) == 26
        assert len(FACE_OFFSETS) == 6
        assert (0, 0, 0) not in NEIGHBOR_OFFSETS
