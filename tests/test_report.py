"""ASCII log-log rendering."""

import pytest

from repro.distsim import scaling_curve
from repro.distsim.report import ascii_loglog, curve_to_points
from repro.distsim.sweep import node_series
from repro.machines import FUGAKU
from repro.scenarios import rotating_star


class TestAsciiLogLog:
    def test_renders_series(self):
        lines = ascii_loglog({"a": [(1, 10), (10, 100), (100, 900)]})
        text = "\n".join(lines)
        assert "o = a" in text
        assert text.count("o") >= 3 + 1  # 3 points + legend

    def test_multiple_series_distinct_glyphs(self):
        lines = ascii_loglog(
            {"fast": [(1, 10), (10, 100)], "slow": [(1, 5), (10, 40)]}
        )
        assert "o = fast" in lines[0]
        assert "x = slow" in lines[0]

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_loglog({})
        with pytest.raises(ValueError):
            ascii_loglog({"a": []})
        with pytest.raises(ValueError):
            ascii_loglog({"a": [(0, 1)]})
        with pytest.raises(ValueError):
            ascii_loglog({"a": [(1, -1)]})

    def test_axis_labels_present(self):
        lines = ascii_loglog({"a": [(1, 1), (2, 2)]}, x_label="N", y_label="rate")
        assert "rate vs N" in lines[-1]

    def test_monotone_curve_monotone_rows(self):
        """The highest point renders above the lowest point."""
        lines = ascii_loglog({"a": [(1, 1), (100, 1000)]}, width=30, height=10)
        grid = lines[1:-1]
        first_row_with_point = next(i for i, l in enumerate(grid) if "o" in l)
        last_row_with_point = max(i for i, l in enumerate(grid) if "o" in l)
        assert first_row_with_point < last_row_with_point

    def test_integration_with_model_curves(self):
        spec = rotating_star(level=5, build_mesh=False).spec
        curve = scaling_curve(spec, FUGAKU, node_series(1, 64))
        lines = ascii_loglog({"fugaku": curve_to_points(curve)})
        assert len(lines) > 10
