"""Sedov blast validation, virial diagnostics, reconstruction ablation."""

import numpy as np
import pytest

from repro.gravity import FmmSolver
from repro.gravity.energy import (
    internal_energy,
    kinetic_energy,
    potential_energy,
    virial_diagnostics,
)
from repro.hydro import HydroIntegrator
from repro.octree import Field
from repro.scenarios import sedov_blast

from tests.conftest import fill_gaussian, make_uniform_mesh


class TestSedovSetup:
    def test_total_energy_deposited_exactly(self):
        scenario = sedov_blast(levels=1, energy=2.5, background_pressure=0.0)
        assert scenario.mesh.integral(Field.EGAS) == pytest.approx(2.5, rel=1e-12)

    def test_uniform_density(self):
        scenario = sedov_blast(levels=1, rho0=0.7)
        assert scenario.mesh.integral(Field.RHO) == pytest.approx(
            0.7 * 8.0, rel=1e-12
        )

    def test_deposit_radius_guard(self):
        with pytest.raises(ValueError):
            sedov_blast(levels=1, deposit_radius_cells=0.01)

    def test_sedov_radius_formula(self):
        scenario = sedov_blast(levels=1)
        assert scenario.sedov_radius(1.0) == pytest.approx(1.15)
        assert scenario.sedov_radius(4.0) / scenario.sedov_radius(1.0) == pytest.approx(
            4.0**0.4
        )


@pytest.mark.slow
class TestSedovEvolution:
    def test_shock_tracks_selfsimilar_solution(self):
        scenario = sedov_blast(levels=2)
        integ = HydroIntegrator(scenario.mesh, scenario.eos, cfl=0.3)
        m0 = scenario.mesh.integral(Field.RHO)
        e0 = scenario.mesh.integral(Field.EGAS)
        while integ.time < 0.02:
            integ.step()
        # Conservation through a strong shock.
        assert scenario.mesh.integral(Field.RHO) == pytest.approx(m0, rel=1e-12)
        assert scenario.mesh.integral(Field.EGAS) == pytest.approx(e0, rel=1e-12)
        # Shock radius within 15% of the Sedov-Taylor value once the blast
        # has forgotten the finite deposit region.
        r = scenario.shock_radius()
        expected = scenario.sedov_radius(integ.time)
        assert abs(r - expected) / expected < 0.15

    def test_blast_stays_spherical(self):
        scenario = sedov_blast(levels=2)
        integ = HydroIntegrator(scenario.mesh, scenario.eos, cfl=0.3)
        for _ in range(10):
            integ.step()
        # The octant-averaged shell radii agree (symmetry of the scheme).
        radii = []
        for sx in (-1, 1):
            num = den = 0.0
            for leaf in scenario.mesh.leaves():
                x, y, z = leaf.cell_centers()
                rho = leaf.subgrid.interior_view(Field.RHO)
                half = x * sx > 0
                shell = (rho > 1.05) & half
                if shell.any():
                    r = np.sqrt(x**2 + y**2 + z**2)
                    w = (rho - 1.0)[shell]
                    num += float((r[shell] * w).sum())
                    den += float(w.sum())
            radii.append(num / den)
        assert radii[0] == pytest.approx(radii[1], rel=1e-10)


class TestReconstructionAblation:
    def test_constant_reconstruction_runs_and_is_more_diffusive(self):
        from repro.hydro import sod_solution
        from tests.test_hydro_integrator import sod_mesh

        errors = {}
        for scheme in ("muscl", "constant"):
            mesh, eos = sod_mesh(levels=1)
            integ = HydroIntegrator(mesh, eos, reconstruction=scheme)
            integ.run(0.08)
            xs, rhos = [], []
            for leaf in mesh.leaves():
                x, _, _ = leaf.cell_centers()
                o = leaf.origin
                if abs(o[1] + 0.5) < 1e-9 and abs(o[2] + 0.5) < 1e-9:
                    xs.extend(x[:, 0, 0])
                    rhos.extend(leaf.subgrid.interior_view(Field.RHO)[:, 0, 0])
            xs, rhos = np.array(xs), np.array(rhos)
            order = np.argsort(xs)
            exact, _, _ = sod_solution(xs[order], integ.time, x0=0.0)
            errors[scheme] = float(np.abs(rhos[order] - exact).mean())
        assert errors["muscl"] < errors["constant"]

    def test_unknown_scheme_rejected(self, eos):
        from repro.hydro.solver import dudt_subgrid
        from repro.octree.subgrid import SubGrid

        with pytest.raises(ValueError):
            dudt_subgrid(SubGrid(8, 2), 0.1, eos, reconstruction="ppm")


class TestVirial:
    def test_kinetic_energy_of_rigid_flow(self):
        mesh = make_uniform_mesh(levels=1)
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.full((8, 8, 8), 2.0))
            leaf.subgrid.set_interior(Field.SX, np.full((8, 8, 8), 1.0))
        # E_kin = 1/2 s^2 / rho * V = 0.5 * 1 / 2 * 8.
        assert kinetic_energy(mesh) == pytest.approx(2.0)

    def test_internal_energy_subtracts_kinetic(self):
        mesh = make_uniform_mesh(levels=1)
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.ones((8, 8, 8)))
            leaf.subgrid.set_interior(Field.SX, np.ones((8, 8, 8)))
            leaf.subgrid.set_interior(Field.EGAS, np.full((8, 8, 8), 3.0))
        # eint = 3 - 0.5 per cell, over volume 8.
        assert internal_energy(mesh) == pytest.approx(2.5 * 8.0)

    def test_potential_energy_negative_for_bound_blob(self):
        mesh = make_uniform_mesh(levels=1)
        fill_gaussian(mesh)
        phi = FmmSolver().solve(mesh).phi
        assert potential_energy(mesh, phi) < 0.0

    def test_virial_diagnostics_bundle(self):
        mesh = make_uniform_mesh(levels=1)
        fill_gaussian(mesh)
        phi = FmmSolver().solve(mesh).phi
        v = virial_diagnostics(mesh, phi)
        assert v.kinetic == 0.0
        assert v.potential < 0.0
        assert v.virial_error >= 0.0

    @pytest.mark.slow
    def test_scf_equilibrium_roughly_virialised(self):
        from repro.scenarios import rotating_star

        scenario = rotating_star(level=2, scf_grid=32)
        phi = FmmSolver().solve(scenario.mesh).phi
        v = virial_diagnostics(scenario.mesh, phi)
        # The SCF model in its rotating frame: 2K + 2U + W balanced within
        # tens of percent at this resolution (K here excludes the frame's
        # rotational support, so the tolerance is loose but bounded).
        assert v.virial_error < 0.6
