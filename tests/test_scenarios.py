"""Scenario builders and workload specs."""

import numpy as np
import pytest

from repro.octree import Field
from repro.scenarios import (
    DWD_CELLS,
    ROTATING_STAR_LEVELS,
    ScenarioSpec,
    V1309_CELLS,
    dwd_scenario,
    rotating_star,
    v1309_scenario,
    workload_from_mesh,
)


class TestSpec:
    def test_cells_and_memory(self):
        spec = ScenarioSpec(name="x", n_subgrids=1000, max_level=5)
        assert spec.n_cells == 512_000
        assert spec.memory_bytes == 1000 * spec.bytes_per_subgrid

    def test_face_bytes(self):
        spec = ScenarioSpec(name="x", n_subgrids=1, max_level=1)
        assert spec.face_bytes == 8 * 2 * 64 * 8  # NFIELDS * ghost * n^2 * 8

    def test_min_nodes_power_of_two(self):
        spec = ScenarioSpec(name="x", n_subgrids=100_000, max_level=8)
        nodes = spec.min_nodes(28e9)
        assert nodes & (nodes - 1) == 0  # power of two
        assert nodes * 28e9 >= spec.memory_bytes

    def test_with_subgrids(self):
        spec = ScenarioSpec(name="x", n_subgrids=10, max_level=2)
        assert spec.with_subgrids(20).n_subgrids == 20
        assert spec.with_subgrids(20).name == "x"


class TestPaperScaleSpecs:
    def test_rotating_star_levels(self):
        assert ROTATING_STAR_LEVELS[5] == 2_500_000
        assert ROTATING_STAR_LEVELS[6] == 14_200_000
        assert ROTATING_STAR_LEVELS[7] == 88_600_000
        for level in (5, 6, 7):
            scenario = rotating_star(level=level, build_mesh=False)
            assert scenario.mesh is None
            assert scenario.spec.n_cells == pytest.approx(
                ROTATING_STAR_LEVELS[level], rel=0.01
            )

    def test_v1309_paper_workload(self):
        scenario = v1309_scenario(level=11, build_mesh=False)
        assert scenario.spec.n_subgrids == 17_000_000
        assert scenario.spec.n_cells == V1309_CELLS

    def test_dwd_paper_workload(self):
        scenario = dwd_scenario(level=12, build_mesh=False)
        assert scenario.spec.n_subgrids == 5_150_720
        assert scenario.spec.n_cells == DWD_CELLS

    def test_dwd_fits_one_fugaku_node(self):
        from repro.machines import FUGAKU

        scenario = dwd_scenario(level=12, build_mesh=False)
        assert scenario.spec.memory_bytes <= FUGAKU.node.memory_gb * 1e9


@pytest.mark.slow
class TestBuiltScenarios:
    def test_rotating_star_mesh(self):
        scenario = rotating_star(level=2, scf_grid=32)
        mesh = scenario.mesh
        assert mesh is not None
        mesh.check_invariants()
        assert scenario.omega > 0
        assert mesh.total_mass() > 0.01
        # Density refinement put the finest level where the star is.
        assert mesh.max_level() == 2
        spec = scenario.spec
        assert spec.n_subgrids == mesh.n_subgrids()
        assert spec.fmm_interactions_per_subgrid > 0

    def test_v1309_tracers_paint_two_stars(self):
        scenario = v1309_scenario(level=2, scf_grid=32)
        mesh = scenario.mesh
        m1 = mesh.integral(Field.FRAC1)
        m2 = mesh.integral(Field.FRAC2)
        assert m1 > 0 and m2 > 0
        assert m1 + m2 == pytest.approx(mesh.total_mass(), rel=1e-6)

    def test_v1309_envelope_connects_stars(self):
        with_env = v1309_scenario(level=2, scf_grid=32, envelope_fraction=0.05)
        without = v1309_scenario(level=2, scf_grid=32, envelope_fraction=0.0)
        assert with_env.mesh.total_mass() > without.mesh.total_mass()

    def test_dwd_mass_ratio(self):
        scenario = dwd_scenario(level=2, scf_grid=32)
        assert scenario.mass_ratio == pytest.approx(0.7, abs=0.12)
        assert scenario.omega > 0

    def test_workload_measured_from_mesh(self):
        scenario = rotating_star(level=2, scf_grid=32)
        spec = workload_from_mesh(scenario.mesh, name="check")
        assert spec.n_subgrids == scenario.mesh.n_subgrids()
        assert spec.ghost_faces_per_subgrid <= 6.0
        assert spec.p2p_pairs_per_subgrid > 1.0
