"""Gravity: multipole algebra, kernels, FMM accuracy, conservation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gravity import (
    FmmSolver,
    LocalExpansion,
    Multipole,
    d_tensors,
    m2l,
    m2l_batch,
    p2l,
    project_angular_momentum,
    project_momentum,
    stacked_octant_moments,
    total_force,
    total_torque,
)
from repro.octree import Field

from tests.conftest import fill_gaussian, make_uniform_mesh

rng = np.random.default_rng(1234)


def random_cloud(n=20, offset=(0, 0, 0), scale=0.3, seed=0):
    r = np.random.default_rng(seed)
    pos = r.normal(size=(n, 3)) * scale + np.array(offset, dtype=float)
    mass = r.random(n) + 0.1
    return pos, mass


class TestMultipole:
    def test_from_points_monopole(self):
        pos, mass = random_cloud()
        mp = Multipole.from_points(pos, mass)
        assert mp.mass == pytest.approx(mass.sum())
        np.testing.assert_allclose(
            mp.center, (pos * mass[:, None]).sum(0) / mass.sum()
        )

    def test_zero_mass_fallback_center(self):
        mp = Multipole.from_points(np.zeros((3, 3)), np.zeros(3),
                                   fallback_center=np.array([1.0, 2.0, 3.0]))
        assert mp.mass == 0.0
        np.testing.assert_allclose(mp.center, [1, 2, 3])

    def test_moments_symmetric(self):
        pos, mass = random_cloud()
        mp = Multipole.from_points(pos, mass)
        np.testing.assert_allclose(mp.quad, mp.quad.T)
        np.testing.assert_allclose(mp.octu, mp.octu.transpose(1, 0, 2))
        np.testing.assert_allclose(mp.octu, mp.octu.transpose(2, 1, 0))

    def test_combine_matches_direct(self):
        """M2M shift identities: combining sub-cloud moments must equal the
        moments of the union computed directly."""
        pos1, m1 = random_cloud(seed=1, offset=(0.5, 0, 0))
        pos2, m2_ = random_cloud(seed=2, offset=(-0.5, 0.2, 0))
        part1 = Multipole.from_points(pos1, m1)
        part2 = Multipole.from_points(pos2, m2_)
        combined = Multipole.combine([part1, part2])
        direct = Multipole.from_points(
            np.concatenate([pos1, pos2]), np.concatenate([m1, m2_])
        )
        assert combined.mass == pytest.approx(direct.mass)
        np.testing.assert_allclose(combined.center, direct.center, atol=1e-12)
        np.testing.assert_allclose(combined.quad, direct.quad, atol=1e-10)
        np.testing.assert_allclose(combined.octu, direct.octu, atol=1e-10)

    def test_combine_empty(self):
        assert Multipole.combine([Multipole.zero()]).mass == 0.0

    def test_octant_moments_partition_mass(self):
        pos, mass = random_cloud(n=512, scale=0.1)
        om, oc, oq, oo = stacked_octant_moments(
            pos, mass, 8, np.zeros(3), 1.0
        )
        assert om.sum() == pytest.approx(mass.sum())


class TestDerivativeTensors:
    def test_d_tensor_values_on_axis(self):
        d0, d1, d2, d3 = d_tensors(np.array([2.0, 0.0, 0.0]))
        assert d0 == pytest.approx(0.5)
        np.testing.assert_allclose(d1, [-0.25, 0, 0])
        assert d2[0, 0] == pytest.approx(3 * 4 / 32 - 1 / 8)

    def test_d2_is_traceless(self):
        _, _, d2, _ = d_tensors(np.array([0.3, -0.7, 1.1]))
        assert np.trace(d2) == pytest.approx(0.0, abs=1e-12)

    def test_d3_symmetric(self):
        _, _, _, d3 = d_tensors(np.array([0.5, 0.2, -0.4]))
        np.testing.assert_allclose(d3, d3.transpose(1, 0, 2), atol=1e-13)
        np.testing.assert_allclose(d3, d3.transpose(0, 2, 1), atol=1e-13)

    def test_zero_separation_raises(self):
        with pytest.raises(ZeroDivisionError):
            d_tensors(np.zeros(3))

    def test_finite_difference_consistency(self):
        """D1 and D2 are numerical derivatives of D0 and D1."""
        x = np.array([0.8, -0.3, 0.5])
        h = 1e-6
        d0, d1, d2, _ = d_tensors(x)
        for i in range(3):
            dx = np.zeros(3)
            dx[i] = h
            d0p, d1p, _, _ = d_tensors(x + dx)
            d0m, d1m, _, _ = d_tensors(x - dx)
            assert (d0p - d0m) / (2 * h) == pytest.approx(d1[i], rel=1e-6)
            np.testing.assert_allclose((d1p - d1m) / (2 * h), d2[:, i], rtol=1e-5)


class TestM2LKernels:
    def test_point_mass_expansion_accuracy(self):
        src = Multipole(2.0, np.zeros(3), np.zeros((3, 3)), np.zeros((3, 3, 3)))
        local = m2l(src, np.array([2.0, 0.0, 0.0]), order=3)
        delta = np.array([[0.1, 0.05, -0.02]])
        phi, acc = local.evaluate(delta)
        point = np.array([2.0, 0, 0]) + delta[0]
        r = np.linalg.norm(point)
        assert phi[0] == pytest.approx(-2.0 / r, rel=1e-4)
        exact = -2.0 * point / r**3
        # The acceleration carries one fewer Taylor order than the potential;
        # bound the error relative to the dominant component.
        np.testing.assert_allclose(acc[0], exact, atol=2e-3 * np.abs(exact).max())

    def test_m2l_invalid_order(self):
        src = Multipole.zero()
        with pytest.raises(ValueError):
            m2l(src, np.ones(3), order=5)

    def test_m2l_batch_matches_scalar_m2l(self):
        pos, mass = random_cloud(n=8, offset=(3, 0, 0), scale=0.2)
        mps = [Multipole.from_points(pos[i : i + 1], mass[i : i + 1]) for i in range(8)]
        target = np.zeros(3)
        batched = m2l_batch(
            np.array([m.mass for m in mps]),
            np.stack([m.center for m in mps]),
            np.stack([m.quad for m in mps]),
            np.stack([m.octu for m in mps]),
            target,
            order=3,
        )
        sequential = LocalExpansion()
        for mp in mps:
            sequential += m2l(mp, target - mp.center, order=3)
        assert batched.l0 == pytest.approx(sequential.l0, rel=1e-12)
        np.testing.assert_allclose(batched.l1, sequential.l1, rtol=1e-12)
        np.testing.assert_allclose(batched.l2, sequential.l2, rtol=1e-12)
        np.testing.assert_allclose(batched.l3, sequential.l3, rtol=1e-12)

    def test_m2l_batch_quadrupole_improves_over_monopole(self):
        pos, mass = random_cloud(n=30, offset=(2.5, 0.3, -0.1), scale=0.25, seed=9)
        mp = Multipole.from_points(pos, mass)
        target = np.zeros(3)
        exact_phi = -np.sum(mass / np.linalg.norm(pos, axis=1))
        errs = []
        for order in (1, 2, 3):
            local = m2l(mp, target - mp.center, order=order)
            phi, _ = local.evaluate(np.zeros((1, 3)))
            errs.append(abs(phi[0] - exact_phi))
        assert errs[1] < errs[0]
        assert errs[2] <= errs[1] * 1.5  # octupole at least doesn't regress

    def test_p2l_exact_sources(self):
        pos, mass = random_cloud(n=50, offset=(2, 1, 0), scale=0.3, seed=3)
        local = p2l(pos, mass, np.zeros(3))
        phi, acc = local.evaluate(np.zeros((1, 3)))
        r = np.linalg.norm(pos, axis=1)
        exact_phi = -np.sum(mass / r)
        exact_acc = -np.einsum("n,ni->i", mass / r**3, -pos)
        assert phi[0] == pytest.approx(exact_phi, rel=1e-12)
        np.testing.assert_allclose(acc[0], -exact_acc * -1.0, rtol=1e-12)

    def test_p2l_coincident_raises(self):
        with pytest.raises(ZeroDivisionError):
            p2l(np.zeros((1, 3)), np.ones(1), np.zeros(3))


class TestLocalExpansion:
    def test_shift_consistency(self):
        """Evaluating a shifted expansion at 0 equals evaluating the
        original at the shift."""
        src = Multipole(1.5, np.zeros(3), np.zeros((3, 3)), np.zeros((3, 3, 3)))
        local = m2l(src, np.array([3.0, 0.5, -0.2]))
        d = np.array([0.05, -0.03, 0.08])
        shifted = local.shifted(d)
        phi_direct, acc_direct = local.evaluate(d[None, :])
        phi_shift, acc_shift = shifted.evaluate(np.zeros((1, 3)))
        assert phi_shift[0] == pytest.approx(phi_direct[0], rel=1e-10)
        np.testing.assert_allclose(acc_shift[0], acc_direct[0], rtol=1e-6)

    def test_iadd_accumulates(self):
        a = LocalExpansion(1.0, np.ones(3), np.ones((3, 3)), np.ones((3, 3, 3)))
        b = LocalExpansion(2.0, np.ones(3), np.ones((3, 3)), np.ones((3, 3, 3)))
        a += b
        assert a.l0 == 3.0
        assert (a.l1 == 2.0).all()


class TestFmmAccuracy:
    def test_matches_direct_sum(self, gaussian_mesh_l2, direct_reference):
        phi_d, acc_d = direct_reference
        result = FmmSolver(order=3).solve(gaussian_mesh_l2)
        num = sum(np.sum((result.accel[k] - acc_d[k]) ** 2) for k in phi_d)
        den = sum(np.sum(acc_d[k] ** 2) for k in phi_d)
        assert np.sqrt(num / den) < 1e-2
        pnum = sum(np.sum((result.phi[k] - phi_d[k]) ** 2) for k in phi_d)
        pden = sum(np.sum(phi_d[k] ** 2) for k in phi_d)
        assert np.sqrt(pnum / pden) < 1e-3

    def test_pure_p2p_exact_on_level1(self):
        mesh = make_uniform_mesh(levels=1)
        fill_gaussian(mesh)
        result = FmmSolver(
            order=3, momentum_correction=False, angmom_correction=False
        ).solve(mesh)
        from repro.gravity import direct_sum

        phi_d, acc_d = direct_sum(mesh)
        for key in phi_d:
            np.testing.assert_allclose(result.phi[key], phi_d[key], atol=1e-12)
            np.testing.assert_allclose(result.accel[key], acc_d[key], atol=1e-12)
        assert result.stats.m2l_pairs == 0 and result.stats.near_pairs == 0

    def test_interaction_stats_populated(self, gaussian_mesh_l2):
        result = FmmSolver().solve(gaussian_mesh_l2)
        stats = result.stats
        assert stats.p2m == 64
        assert stats.m2m == 9  # 8 level-1 interiors + root
        assert stats.p2p_pairs > 0
        assert stats.near_pairs > 0
        assert stats.multipole_interactions == stats.m2l_pairs + stats.near_pairs

    def test_theta_validation(self):
        with pytest.raises(ValueError):
            FmmSolver(theta=0.0)

    def test_result_shapes(self, gaussian_mesh_l2):
        result = FmmSolver().solve(gaussian_mesh_l2)
        for leaf in gaussian_mesh_l2.leaves():
            assert result.phi[leaf.key].shape == (8, 8, 8)
            assert result.accel[leaf.key].shape == (3, 8, 8, 8)

    def test_attractive_toward_blob(self, gaussian_mesh_l2):
        result = FmmSolver().solve(gaussian_mesh_l2)
        # A far cell's acceleration points roughly towards the blob centre.
        far_leaf = min(
            gaussian_mesh_l2.leaves(),
            key=lambda l: -np.linalg.norm(l.center - np.array([0.2, -0.1, 0.0])),
        )
        a = result.accel[far_leaf.key][:, 4, 4, 4]
        to_blob = np.array([0.2, -0.1, 0.0]) - far_leaf.center
        assert np.dot(a, to_blob) > 0

    def test_empty_mass_threshold_skips_work(self, gaussian_mesh_l2):
        eager = FmmSolver(momentum_correction=False, angmom_correction=False)
        lazy = FmmSolver(
            momentum_correction=False,
            angmom_correction=False,
            empty_mass_threshold=1e30,  # everything counts as empty
        )
        r1 = eager.solve(gaussian_mesh_l2)
        r2 = lazy.solve(gaussian_mesh_l2)
        # With every source 'empty', P2P contributes nothing.
        assert max(np.abs(r2.phi[k]).max() for k in r2.phi) < max(
            np.abs(r1.phi[k]).max() for k in r1.phi
        )


class TestConservationProjections:
    def make_field(self, gaussian_mesh_l2):
        solver = FmmSolver(momentum_correction=False, angmom_correction=False)
        result = solver.solve(gaussian_mesh_l2)
        masses, positions = {}, {}
        for leaf in gaussian_mesh_l2.leaves():
            pos, mass = FmmSolver.leaf_points(leaf)
            masses[leaf.key] = mass
            positions[leaf.key] = pos
        return masses, positions, result.accel

    def test_momentum_projection_zeroes_force(self, gaussian_mesh_l2):
        masses, positions, accel = self.make_field(gaussian_mesh_l2)
        project_momentum(masses, accel)
        force = total_force(masses, accel)
        total_mass = sum(m.sum() for m in masses.values())
        assert np.abs(force).max() / total_mass < 1e-13

    def test_angmom_projection_zeroes_torque(self, gaussian_mesh_l2):
        masses, positions, accel = self.make_field(gaussian_mesh_l2)
        project_angular_momentum(masses, positions, accel)
        torque = np.abs(total_torque(masses, positions, accel))
        assert torque.max() < 1e-13

    def test_projections_commute_on_invariants(self, gaussian_mesh_l2):
        masses, positions, accel = self.make_field(gaussian_mesh_l2)
        project_momentum(masses, accel)
        project_angular_momentum(masses, positions, accel)
        # Angular projection must not reintroduce net force and vice versa.
        assert np.abs(total_force(masses, accel)).max() < 1e-13
        com = sum(m @ positions[k] for k, m in masses.items()) / sum(
            m.sum() for m in masses.values()
        )
        assert np.abs(total_torque(masses, positions, accel, about=com)).max() < 1e-13

    def test_solver_applies_corrections(self, gaussian_mesh_l2):
        result = FmmSolver().solve(gaussian_mesh_l2)
        masses, positions = {}, {}
        for leaf in gaussian_mesh_l2.leaves():
            pos, mass = FmmSolver.leaf_points(leaf)
            masses[leaf.key] = mass
            positions[leaf.key] = pos
        assert np.abs(total_force(masses, result.accel)).max() < 1e-12
        assert np.abs(total_torque(masses, positions, result.accel)).max() < 1e-12

    def test_correction_magnitude_is_small(self, gaussian_mesh_l2):
        """The projection must be a perturbation, not a rewrite."""
        masses, positions, accel = self.make_field(gaussian_mesh_l2)
        before = {k: a.copy() for k, a in accel.items()}
        project_momentum(masses, accel)
        project_angular_momentum(masses, positions, accel)
        rel = max(
            np.abs(accel[k] - before[k]).max() / (np.abs(before[k]).max() + 1e-30)
            for k in accel
        )
        assert rel < 1e-3

    def test_zero_mass_system(self):
        masses = {(0, 0): np.zeros(4)}
        accel = {(0, 0): np.ones((3, 4, 1, 1))}
        assert (project_momentum(masses, accel) == 0).all()
