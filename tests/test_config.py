"""Configuration object tests."""

import pytest

from repro.util.config import Config, ConfigError


class TestDefaults:
    def test_defaults_load(self):
        cfg = Config()
        assert cfg["mesh.subgrid_n"] == 8
        assert cfg["hydro.gamma"] == pytest.approx(5.0 / 3.0)

    def test_contains_and_iter(self):
        cfg = Config()
        assert "hydro.cfl" in cfg
        assert set(iter(cfg)) == set(Config.DEFAULTS)

    def test_as_dict_is_copy(self):
        cfg = Config()
        d = cfg.as_dict()
        d["hydro.gamma"] = 99.0
        assert cfg["hydro.gamma"] != 99.0


class TestOverrides:
    def test_override(self):
        cfg = Config({"hydro.gamma": 1.4})
        assert cfg["hydro.gamma"] == 1.4

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError):
            Config({"hydro.nope": 1})

    def test_get_default(self):
        assert Config().get("not.a.key", 42) == 42

    def test_getitem_unknown_raises(self):
        with pytest.raises(ConfigError):
            Config()["not.a.key"]

    def test_with_overrides_dunder_mapping(self):
        cfg = Config().with_overrides(hydro__gamma=1.4, mesh__max_level=5)
        assert cfg["hydro.gamma"] == 1.4
        assert cfg["mesh.max_level"] == 5

    def test_with_overrides_unknown(self):
        with pytest.raises(ConfigError):
            Config().with_overrides(foo__bar=1)

    def test_repr_shows_changes_only(self):
        assert "1.4" in repr(Config({"hydro.gamma": 1.4}))


class TestValidation:
    @pytest.mark.parametrize(
        "key,value",
        [
            ("mesh.subgrid_n", 1),
            ("mesh.ghost_width", 0),
            ("hydro.cfl", 0.0),
            ("hydro.cfl", 1.5),
            ("hydro.gamma", 1.0),
            ("gravity.order", 4),
            ("runtime.tasks_per_kernel", 0),
            ("runtime.workers", 0),
            ("kokkos.backend", "fortran"),
        ],
    )
    def test_invalid_values(self, key, value):
        with pytest.raises(ConfigError):
            Config({key: value})

    def test_registered_array_backends_accepted(self):
        # Registered-but-uninstalled names validate (availability is
        # checked at get_backend time, not config parse time).
        for name in ("numpy", "pyjit", "numba", "cupy", "jax"):
            assert Config({"kokkos.backend": name})["kokkos.backend"] == name


class TestUnits:
    def test_code_units_g_is_one(self):
        from repro.util.constants import CodeUnits, G_NEWTON

        units = CodeUnits()
        # G in code units: G * m_unit * t_unit^2 / l_unit^3 == 1.
        g_code = G_NEWTON * units.m_unit * units.t_unit**2 / units.l_unit**3
        assert g_code == pytest.approx(1.0, rel=1e-12)

    def test_round_trips(self):
        from repro.util.constants import CodeUnits

        units = CodeUnits()
        assert units.mass_to_cgs(units.mass_to_code(3.2e33)) == pytest.approx(3.2e33)
        assert units.length_to_cgs(units.length_to_code(1e11)) == pytest.approx(1e11)
        assert units.time_to_cgs(units.time_to_code(86400.0)) == pytest.approx(86400.0)

    def test_velocity_and_energy_units(self):
        from repro.util.constants import CodeUnits

        units = CodeUnits()
        assert units.v_unit == pytest.approx(units.l_unit / units.t_unit)
        assert units.e_unit == pytest.approx(units.rho_unit * units.v_unit**2)
