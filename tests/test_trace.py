"""Task-trace recording and Chrome-trace export."""

import json

import pytest

from repro.amt.locality import Runtime
from repro.profiling.trace import (
    TaskTrace,
    TraceEvent,
    TraceRecorder,
    capture_runtime_trace,
)


def make_event(start=0.0, end=1.0, kind="hydro", worker=0, loc=0, name="t"):
    return TraceEvent(name=name, kind=kind, locality=loc, worker=worker,
                      start_s=start, end_s=end)


class TestTaskTrace:
    def test_add_and_len(self):
        trace = TaskTrace()
        trace.add(make_event())
        assert len(trace) == 1

    def test_invalid_event_rejected(self):
        with pytest.raises(ValueError):
            TaskTrace().add(make_event(start=2.0, end=1.0))

    def test_span_and_busy(self):
        trace = TaskTrace()
        trace.add(make_event(0.0, 1.0))
        trace.add(make_event(2.0, 4.0))
        assert trace.span() == 4.0
        assert trace.busy_time() == 3.0

    def test_by_kind_and_critical(self):
        trace = TaskTrace()
        trace.add(make_event(0, 1, kind="fmm"))
        trace.add(make_event(0, 5, kind="hydro"))
        assert trace.by_kind() == {"fmm": 1.0, "hydro": 5.0}
        assert trace.critical_kind() == "hydro"

    def test_empty_trace(self):
        trace = TaskTrace()
        assert trace.span() == 0.0
        assert trace.critical_kind() is None

    def test_chrome_export_format(self, tmp_path):
        trace = TaskTrace()
        trace.add(make_event(0.0, 0.5, kind="hydro", worker=3, loc=1, name="k1"))
        path = trace.save(tmp_path / "trace.json")
        data = json.loads(path.read_text())
        event = data["traceEvents"][0]
        assert event["ph"] == "X"
        assert event["pid"] == 1
        assert event["tid"] == 3
        assert event["dur"] == pytest.approx(0.5e6)


class TestRecorder:
    def test_records_real_tasks(self):
        rt = Runtime(2, 2)
        recorder = TraceRecorder()
        recorder.attach(rt)
        futures = [
            rt.localities[i % 2].async_(None, cost=1.0, kind="work", name=f"t{i}")
            for i in range(6)
        ]
        from repro.amt.future import when_all

        rt.run_until_ready(when_all(futures))
        recorder.detach()
        assert len(recorder.trace) == 6
        assert recorder.trace.busy_time() == pytest.approx(6.0)
        assert {e.locality for e in recorder.trace.events} == {0, 1}
        # Occupancy: 6 unit tasks on 2x2 workers -> span 2 virtual seconds.
        assert recorder.trace.span() == pytest.approx(2.0)

    def test_detach_stops_recording(self):
        rt = Runtime(1, 1)
        recorder = TraceRecorder()
        recorder.attach(rt)
        rt.run_until_ready(rt.here().async_(None, cost=1.0))
        recorder.detach()
        rt.run_until_ready(rt.here().async_(None, cost=1.0))
        assert len(recorder.trace) == 1

    def test_aggregate_capture(self):
        rt = Runtime(1, 2)
        rt.run_until_ready(rt.here().async_(None, cost=2.5, kind="fmm.m2l"))
        trace = capture_runtime_trace(rt)
        assert len(trace) == 1
        assert trace.events[0].kind == "fmm.m2l"
        assert trace.events[0].duration_s == pytest.approx(2.5)

    def test_distributed_driver_trace(self):
        """End to end: trace a distributed hydro step and see its phases."""
        from tests.test_distributed_driver import build_mesh
        from repro.core.distributed import DistributedHydroDriver
        from repro.distsim import RunConfig
        from repro.machines import FUGAKU

        mesh, eos = build_mesh()
        driver = DistributedHydroDriver(
            mesh, eos, config=RunConfig(machine=FUGAKU, nodes=2)
        )
        # The driver builds its own runtime per step; use counters instead.
        # Default (coalesced) exchange: kernels + updates per stage, plus a
        # handful of bundle pack/unpack shards — far below the per-face
        # task count, which the ablation path below still reaches.
        result = driver.step(1e-3)
        assert result.tasks_completed >= 8 * 2 * 3  # kernel+update per stage

        mesh_pf, eos_pf = build_mesh()
        per_face = DistributedHydroDriver(
            mesh_pf, eos_pf,
            config=RunConfig(machine=FUGAKU, nodes=2, coalesce=False),
        )
        result_pf = per_face.step(1e-3)
        assert result_pf.tasks_completed >= 8 * (6 + 2) * 3  # fills too
        assert result.tasks_completed < result_pf.tasks_completed
