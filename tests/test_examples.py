"""The examples stay importable and structurally sound.

Full executions live in the examples themselves (and a couple run for
minutes); here we compile each one and check its contract: a module
docstring explaining what it shows and a ``main`` entry point guarded by
``__main__``.
"""

import ast
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[1] / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
class TestExampleStructure:
    def test_compiles(self, path):
        ast.parse(path.read_text(), filename=str(path))

    def test_has_docstring_and_main(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
        names = {n.name for n in tree.body if isinstance(n, ast.FunctionDef)}
        assert names, f"{path.name} defines no functions"
        guard = any(
            isinstance(node, ast.If)
            and isinstance(node.test, ast.Compare)
            and getattr(node.test.left, "id", "") == "__name__"
            for node in tree.body
        )
        assert guard, f"{path.name} lacks the __main__ guard"

    def test_imports_resolve(self, path):
        """Every repro import in the example exists in the installed package."""
        import importlib

        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.module.startswith("repro"):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{path.name}: {node.module}.{alias.name} missing"
                    )


def test_at_least_five_examples_exist():
    assert len(EXAMPLES) >= 5
