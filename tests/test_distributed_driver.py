"""Distributed functional execution vs the serial reference integrator.

The strongest test in the suite: the same physical step, executed as a
distributed task graph with ghost messages and anti-dependencies, must
produce the same field values as the serial integrator.
"""

import numpy as np
import pytest

from repro.core.distributed import DistributedHydroDriver
from repro.distsim import RunConfig
from repro.hydro import HydroIntegrator, IdealGasEOS
from repro.machines import FUGAKU, OOKAMI
from repro.octree import AmrMesh, Field


def build_mesh(adaptive=False):
    eos = IdealGasEOS()
    mesh = AmrMesh(n=8, ghost=2, domain_size=2.0)
    mesh.refine((0, 0))
    if adaptive:
        mesh.refine((1, 0))
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        rho = 1.0 + 0.4 * np.exp(-((x + 0.3) ** 2 + y**2 + z**2) / 0.1)
        eint = np.full_like(rho, 2.5)
        leaf.subgrid.set_interior(Field.RHO, rho)
        leaf.subgrid.set_interior(Field.SX, 0.05 * rho * np.cos(np.pi * y))
        leaf.subgrid.set_interior(Field.EGAS, eint + 0.00125 * rho * np.cos(np.pi * y) ** 2)
        leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
    mesh.restrict_all()
    return mesh, eos


def clone(mesh):
    from repro.octree.node import OctreeNode

    out = AmrMesh(n=mesh.n, ghost=mesh.ghost, domain_size=mesh.domain_size)
    out.nodes.clear()
    for key, node in mesh.nodes.items():
        copy = OctreeNode(key[0], key[1], n=mesh.n, ghost=mesh.ghost,
                          domain_size=mesh.domain_size)
        copy.is_leaf = node.is_leaf
        np.copyto(copy.subgrid.data, node.subgrid.data)
        out.nodes[key] = copy
    return out


class TestEquivalenceWithSerial:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_uniform_mesh_identical_fields(self, nodes):
        mesh_a, eos = build_mesh()
        mesh_b = clone(mesh_a)
        dt = 1e-3

        serial = HydroIntegrator(mesh_a, eos, reflux=False)
        serial.step(dt)

        driver = DistributedHydroDriver(
            mesh_b, eos, config=RunConfig(machine=FUGAKU, nodes=nodes)
        )
        driver.step(dt)

        for key in mesh_a.leaf_keys():
            np.testing.assert_allclose(
                mesh_b.nodes[key].subgrid.interior_view(),
                mesh_a.nodes[key].subgrid.interior_view(),
                rtol=0, atol=1e-14,
            )

    def test_adaptive_mesh_identical_fields(self):
        mesh_a, eos = build_mesh(adaptive=True)
        mesh_b = clone(mesh_a)
        dt = 5e-4
        HydroIntegrator(mesh_a, eos, reflux=False).step(dt)
        DistributedHydroDriver(
            mesh_b, eos, config=RunConfig(machine=FUGAKU, nodes=3)
        ).step(dt)
        for key in mesh_a.leaf_keys():
            np.testing.assert_allclose(
                mesh_b.nodes[key].subgrid.interior_view(),
                mesh_a.nodes[key].subgrid.interior_view(),
                rtol=0, atol=1e-14,
            )

    def test_rotating_frame_matches_serial(self):
        mesh_a, eos = build_mesh()
        mesh_b = clone(mesh_a)
        dt = 1e-3
        HydroIntegrator(mesh_a, eos, omega=0.3, reflux=False).step(dt)
        DistributedHydroDriver(
            mesh_b, eos, omega=0.3, config=RunConfig(machine=FUGAKU, nodes=2)
        ).step(dt)
        for key in mesh_a.leaf_keys():
            np.testing.assert_allclose(
                mesh_b.nodes[key].subgrid.interior_view(),
                mesh_a.nodes[key].subgrid.interior_view(),
                rtol=0, atol=1e-14,
            )

    def test_multi_step_stays_identical(self):
        mesh_a, eos = build_mesh()
        mesh_b = clone(mesh_a)
        serial = HydroIntegrator(mesh_a, eos, reflux=False)
        driver = DistributedHydroDriver(
            mesh_b, eos, config=RunConfig(machine=FUGAKU, nodes=2)
        )
        for _ in range(3):
            serial.step(1e-3)
            driver.step(1e-3)
        for key in mesh_a.leaf_keys():
            np.testing.assert_allclose(
                mesh_b.nodes[key].subgrid.interior_view(Field.RHO),
                mesh_a.nodes[key].subgrid.interior_view(Field.RHO),
                rtol=0, atol=1e-13,
            )


class TestDistributionMechanics:
    def test_single_locality_sends_nothing(self):
        mesh, eos = build_mesh()
        driver = DistributedHydroDriver(
            mesh, eos, config=RunConfig(machine=FUGAKU, nodes=1)
        )
        result = driver.step(1e-3)
        assert result.messages == 0
        assert result.tasks_completed > 0

    def test_multi_locality_sends_ghosts(self):
        mesh, eos = build_mesh()
        driver = DistributedHydroDriver(
            mesh, eos, config=RunConfig(machine=FUGAKU, nodes=4)
        )
        result = driver.step(1e-3)
        assert result.messages > 0
        assert result.bytes_sent > 0

    def test_comm_optimization_reduces_messages(self):
        mesh_a, eos = build_mesh()
        mesh_b = clone(mesh_a)
        on = DistributedHydroDriver(
            mesh_a, eos,
            config=RunConfig(machine=OOKAMI, nodes=2, comm_local_optimization=True),
        ).step(1e-3)
        off = DistributedHydroDriver(
            mesh_b, eos,
            config=RunConfig(machine=OOKAMI, nodes=2, comm_local_optimization=False),
        ).step(1e-3)
        assert on.messages < off.messages

    def test_makespan_shrinks_with_localities(self):
        times = []
        for nodes in (1, 4):
            mesh, eos = build_mesh()
            driver = DistributedHydroDriver(
                mesh, eos, config=RunConfig(machine=FUGAKU, nodes=nodes)
            )
            times.append(driver.step(1e-3).makespan_s)
        assert times[1] < times[0]

    def test_bookkeeping(self):
        mesh, eos = build_mesh()
        driver = DistributedHydroDriver(
            mesh, eos, config=RunConfig(machine=FUGAKU, nodes=2)
        )
        driver.step(2e-3)
        assert driver.time == pytest.approx(2e-3)
        assert driver.steps_taken == 1
        assert driver.last_result is not None
        assert 0 < driver.last_result.utilization <= 1
