"""End-to-end integration: scenarios evolved through the full stack.

These are the expensive tests that exercise SCF -> deposit -> AMR -> hydro +
FMM -> diagnostics together, checking the paper-level invariants (machine
precision conservation, stable equilibria, mass transfer direction).
"""

import numpy as np
import pytest

from repro.core import OctoTigerSim
from repro.core.diagnostics import diagnostics
from repro.machines import FUGAKU
from repro.octree import Field

pytestmark = pytest.mark.slow


class TestRotatingStarEvolution:
    @pytest.fixture(scope="class")
    def evolved(self):
        from repro.scenarios import rotating_star

        scenario = rotating_star(level=2, scf_grid=32)
        sim = OctoTigerSim(
            scenario.mesh,
            eos=scenario.eos,
            omega=scenario.omega,
            machine=FUGAKU,
            nodes=4,
        )
        before = diagnostics(scenario.mesh)
        records = sim.run(3)
        after = diagnostics(scenario.mesh)
        return scenario, sim, before, after, records

    def test_mass_conserved_machine_precision(self, evolved):
        _, _, before, after, _ = evolved
        assert after.mass == pytest.approx(before.mass, rel=1e-12)

    def test_equilibrium_is_quiet(self, evolved):
        """An SCF equilibrium evolved in its own rotating frame stays put:
        the peak velocity remains small compared to the sound speed."""
        scenario, sim, _, _, _ = evolved
        vmax = 0.0
        cmax = 0.0
        for leaf in scenario.mesh.leaves():
            rho = np.maximum(leaf.subgrid.interior_view(Field.RHO), 1e-12)
            inside = rho > 1e-3 * rho.max()
            if not inside.any():
                continue
            v = np.abs(leaf.subgrid.interior_view(Field.SX) / rho)[inside].max()
            vmax = max(vmax, float(v))
            from repro.hydro.solver import primitives_from_conserved

            s = leaf.subgrid.interior
            w = primitives_from_conserved(leaf.subgrid.data[:, s, s, s], sim.eos)
            cmax = max(cmax, float(sim.eos.sound_speed(w["rho"], w["p"])[inside].max()))
        assert vmax < 0.5 * cmax

    def test_records_consistent(self, evolved):
        _, sim, _, _, records = evolved
        assert len(records) == 3
        assert all(r.virtual_seconds > 0 for r in records)
        assert sim.mean_cells_per_second() > 0


class TestDwdEvolution:
    def test_binary_holds_together_and_transfers_nothing_yet(self):
        from repro.scenarios import dwd_scenario

        scenario = dwd_scenario(level=2, scf_grid=32)
        sim = OctoTigerSim(
            scenario.mesh,
            eos=scenario.eos,
            omega=scenario.omega,
            machine=FUGAKU,
            nodes=2,
        )
        before = diagnostics(scenario.mesh)
        sim.run(2)
        after = diagnostics(scenario.mesh)
        assert after.mass == pytest.approx(before.mass, rel=1e-12)
        # Tracer masses identify the two stars and are conserved.
        np.testing.assert_allclose(
            after.tracer_masses, before.tracer_masses, rtol=1e-10
        )
        # The binary COM stays near the origin over a couple of steps.
        assert np.linalg.norm(after.com - before.com) < 0.02


class TestCheckpointRestartConsistency:
    def test_evolution_identical_after_restart(self, tmp_path):
        from repro.ioutil import load_checkpoint, save_checkpoint
        from repro.scenarios import rotating_star

        scenario = rotating_star(level=2, scf_grid=32)
        sim = OctoTigerSim(
            scenario.mesh, eos=scenario.eos, omega=scenario.omega, nodes=1
        )
        sim.step(dt=1e-3)
        path = save_checkpoint(scenario.mesh, tmp_path / "mid", time=sim.integrator.time)

        # Branch A: continue directly.
        sim.step(dt=1e-3)
        direct = {
            leaf.key: leaf.subgrid.interior_view(Field.RHO).copy()
            for leaf in scenario.mesh.leaves()
        }

        # Branch B: restart from the checkpoint and take the same step.
        restored, meta = load_checkpoint(path)
        sim2 = OctoTigerSim(restored, eos=scenario.eos, omega=scenario.omega, nodes=1)
        sim2.integrator.time = meta["time"]
        sim2.step(dt=1e-3)
        for key, rho in direct.items():
            np.testing.assert_allclose(
                restored.nodes[key].subgrid.interior_view(Field.RHO), rho,
                rtol=1e-12, atol=1e-14,
            )
