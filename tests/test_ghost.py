"""Ghost-layer exchange: same-level, coarse-fine, boundaries, plan."""

import numpy as np
import pytest

from repro.octree import AmrMesh, Field
from repro.octree.ghost import exchange_plan, fill_all_ghosts, fill_leaf_ghosts
from repro.octree.partition import sfc_partition
from repro.util.morton import morton_encode3

from tests.conftest import make_uniform_mesh


def set_linear(mesh, a=2.0, bx=3.0, by=-1.0, bz=0.5):
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        leaf.subgrid.set_interior(Field.RHO, a + bx * x + by * y + bz * z)
    mesh.restrict_all()


def face_band(leaf, axis, side, field=Field.RHO):
    sg = leaf.subgrid
    return sg.data[(field,) + sg.ghost_slices(axis, side)]


class TestUniformMesh:
    def test_constant_field_fills_all_faces(self):
        mesh = make_uniform_mesh(levels=2)
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.ones((8, 8, 8)))
        fill_all_ghosts(mesh)
        for leaf in mesh.leaves():
            for axis in range(3):
                for side in (0, 1):
                    assert np.allclose(face_band(leaf, axis, side), 1.0)

    def test_same_level_exchange_exact_for_linear_field(self):
        mesh = make_uniform_mesh(levels=2)
        set_linear(mesh)
        fill_all_ghosts(mesh)
        # Interior leaves' ghosts must continue the linear profile exactly.
        leaf = mesh.nodes[(2, morton_encode3(1, 1, 1))]
        x, y, z = leaf.cell_centers()
        dx = leaf.dx
        band = face_band(leaf, 0, 1)
        # Ghost cells extend +dx, +2dx beyond the interior along x.
        for g in range(2):
            expected = 2.0 + 3.0 * (x[-1, :, :] + (g + 1) * dx) - 1.0 * y[-1, :, :] + 0.5 * z[-1, :, :]
            np.testing.assert_allclose(band[g], expected, rtol=1e-12)

    def test_boundary_outflow_replicates_edge(self):
        mesh = make_uniform_mesh(levels=1)
        set_linear(mesh)
        fill_all_ghosts(mesh)
        corner = mesh.nodes[(1, 0)]
        band = face_band(corner, 0, 0)
        edge = corner.subgrid.interior_view(Field.RHO)[0]
        np.testing.assert_allclose(band[0], edge)
        np.testing.assert_allclose(band[1], edge)

    def test_all_fields_exchanged(self):
        mesh = make_uniform_mesh(levels=1)
        for f in Field:
            for leaf in mesh.leaves():
                leaf.subgrid.set_interior(f, np.full((8, 8, 8), float(f) + 1.0))
        fill_all_ghosts(mesh)
        leaf = mesh.nodes[(1, 0)]
        for f in Field:
            sg = leaf.subgrid
            band = sg.data[(f,) + sg.ghost_slices(0, 1)]
            assert np.allclose(band, float(f) + 1.0)


class TestAmrBoundaries:
    def make_two_level(self):
        mesh = AmrMesh()
        mesh.refine((0, 0))
        mesh.refine((1, 0))  # corner refined to level 2
        return mesh

    def test_constant_across_coarse_fine(self):
        mesh = self.make_two_level()
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.ones((8, 8, 8)))
        mesh.restrict_all()
        fill_all_ghosts(mesh)
        for leaf in mesh.leaves():
            for axis in range(3):
                for side in (0, 1):
                    band = face_band(leaf, axis, side)
                    assert np.allclose(band, 1.0), (leaf.key, axis, side)

    def test_fine_to_coarse_is_conservative_average(self):
        mesh = self.make_two_level()
        rng = np.random.default_rng(7)
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, rng.random((8, 8, 8)))
        mesh.restrict_all()
        coarse = mesh.nodes[(1, morton_encode3(1, 0, 0))]
        fill_leaf_ghosts(mesh, coarse)
        kind, children = mesh.face_neighbor(coarse, 0, 0)
        assert kind == "fine"
        band = face_band(coarse, 0, 0)
        # The nearest ghost layer equals the 2x2x2 average of the children's
        # nearest two interior layers: check the total (conservation proxy).
        child_sum = sum(
            c.subgrid.interior_view(Field.RHO)[-4:, :, :].sum() for c in children
        )
        assert band.sum() * 8.0 == pytest.approx(child_sum, rel=1e-12)

    def test_coarse_to_fine_prolongation_constant_blocks(self):
        mesh = self.make_two_level()
        for leaf in mesh.leaves():
            x, _, _ = leaf.cell_centers()
            leaf.subgrid.set_interior(Field.RHO, np.where(x > 0, 5.0, 2.0))
        mesh.restrict_all()
        fine = mesh.nodes[(2, morton_encode3(1, 0, 0))]
        fill_leaf_ghosts(mesh, fine)
        kind, _ = mesh.face_neighbor(fine, 0, 1)
        assert kind == "coarse"
        band = face_band(fine, 0, 1)
        # Piecewise-constant prolongation: 2x2 fine ghost cells share one
        # coarse value.
        assert np.allclose(band[:, 0::2, :], band[:, 1::2, :])
        assert np.allclose(band[:, :, 0::2], band[:, :, 1::2])


class TestExchangePlan:
    def test_counts_uniform(self):
        mesh = make_uniform_mesh(levels=1)
        plan = exchange_plan(mesh)
        # 8 leaves x 6 faces: 24 boundary, 24 same-level transfers.
        assert len(plan) == 48
        kinds = [p.kind for p in plan]
        assert kinds.count("boundary") == 24
        assert kinds.count("same") == 24

    def test_bytes_positive_for_transfers(self):
        mesh = make_uniform_mesh(levels=1)
        for ex in exchange_plan(mesh):
            if ex.kind == "boundary":
                assert ex.size_bytes == 0
            else:
                assert ex.size_bytes > 0

    def test_locality_flags_follow_partition(self):
        mesh = make_uniform_mesh(levels=2)
        sfc_partition(mesh, 4)
        plan = exchange_plan(mesh)
        remote = [p for p in plan if p.src is not None and not p.same_locality]
        local = [p for p in plan if p.src is not None and p.same_locality]
        assert remote and local
        for ex in remote:
            assert mesh.nodes[ex.dst].locality != mesh.nodes[ex.src].locality

    def test_fine_entries_quartered(self):
        mesh = AmrMesh()
        mesh.refine((0, 0))
        mesh.refine((1, 0))
        plan = exchange_plan(mesh)
        fine_entries = [p for p in plan if p.kind == "fine"]
        assert fine_entries
        full = mesh.nodes[(1, 1)].subgrid.nbytes_face()
        assert all(p.size_bytes == full // 4 for p in fine_entries)


class TestPartition:
    def test_all_leaves_assigned_contiguously(self):
        mesh = make_uniform_mesh(levels=2)
        assignment = sfc_partition(mesh, 4)
        assert set(assignment.values()) == {0, 1, 2, 3}
        # SFC order must be monotone in locality.
        from repro.octree.partition import sfc_key

        max_level = mesh.max_level()
        ordered = sorted(mesh.leaves(), key=lambda nd: sfc_key(nd, max_level))
        locs = [leaf.locality for leaf in ordered]
        assert locs == sorted(locs)

    def test_balance(self):
        from repro.octree.partition import partition_stats

        mesh = make_uniform_mesh(levels=2)
        sfc_partition(mesh, 4)
        stats = partition_stats(mesh, 4)
        assert stats.subgrids_per_locality == [16, 16, 16, 16]
        assert stats.imbalance == pytest.approx(1.0)
        assert 0.0 < stats.remote_fraction < 1.0

    def test_weighted_partition(self):
        mesh = make_uniform_mesh(levels=1)
        weights = {key: (10.0 if key == (1, 0) else 1.0) for key in mesh.leaf_keys()}
        sfc_partition(mesh, 2, weights=weights)
        counts = [0, 0]
        for leaf in mesh.leaves():
            counts[leaf.locality] += 1
        # The heavy first leaf pushes most others to locality 1.
        assert counts[0] < counts[1]

    def test_single_locality(self):
        mesh = make_uniform_mesh(levels=1)
        sfc_partition(mesh, 1)
        assert all(leaf.locality == 0 for leaf in mesh.leaves())

    def test_interior_nodes_follow_children(self):
        mesh = make_uniform_mesh(levels=2)
        sfc_partition(mesh, 4)
        for node in mesh.nodes.values():
            if not node.is_leaf:
                first_child = mesh.nodes[node.children_keys()[0]]
                assert node.locality == first_child.locality

    def test_invalid_counts(self):
        mesh = make_uniform_mesh(levels=1)
        with pytest.raises(ValueError):
            sfc_partition(mesh, 0)
        with pytest.raises(ValueError):
            sfc_partition(mesh, 2, weights={mesh.leaf_keys()[0]: -1.0})
