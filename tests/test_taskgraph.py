"""Task-graph DES: cross-validation against the analytic model and direct
observation of the mechanisms the paper discusses."""

import pytest

from repro.distsim import RunConfig, TaskGraphSimulator, simulate_step
from repro.machines import FUGAKU, OOKAMI
from repro.scenarios.spec import ScenarioSpec


def small_spec(n_subgrids=216, name="des-test"):
    return ScenarioSpec(name=name, n_subgrids=n_subgrids, max_level=3)


class TestBasics:
    def test_runs_and_reports(self):
        config = RunConfig(machine=FUGAKU, nodes=2)
        result = TaskGraphSimulator(small_spec(), config).run_step()
        assert result.makespan_s > 0
        assert result.cells_per_second > 0
        assert 0 < result.utilization <= 1.0
        assert result.tasks > small_spec().n_subgrids * 3

    def test_size_guard(self):
        with pytest.raises(ValueError):
            TaskGraphSimulator(small_spec(n_subgrids=10**6), RunConfig(machine=FUGAKU))

    def test_deterministic(self):
        config = RunConfig(machine=FUGAKU, nodes=2)
        r1 = TaskGraphSimulator(small_spec(), config).run_step()
        r2 = TaskGraphSimulator(small_spec(), config).run_step()
        assert r1.makespan_s == r2.makespan_s
        assert r1.messages == r2.messages

    def test_remote_messages_only_with_multiple_nodes(self):
        one = TaskGraphSimulator(small_spec(), RunConfig(machine=FUGAKU, nodes=1)).run_step()
        four = TaskGraphSimulator(small_spec(), RunConfig(machine=FUGAKU, nodes=4)).run_step()
        assert one.messages == 0  # comm opt on: local faces use promises
        assert four.messages > 0


class TestMechanisms:
    def test_more_nodes_faster(self):
        times = []
        for nodes in (1, 2, 4):
            result = TaskGraphSimulator(
                small_spec(), RunConfig(machine=FUGAKU, nodes=nodes)
            ).run_step()
            times.append(result.makespan_s)
        assert times[0] > times[1] > times[2]

    def test_multipole_splitting_helps_starved_runs(self):
        """Fig. 9's mechanism observed directly in the DES: with few
        sub-grids per node, splitting the multipole kernel into 16 tasks
        shortens the traversal."""
        spec = small_spec(n_subgrids=512)
        slow = TaskGraphSimulator(
            spec, RunConfig(machine=FUGAKU, nodes=8, tasks_per_multipole_kernel=1)
        ).run_step()
        fast = TaskGraphSimulator(
            spec, RunConfig(machine=FUGAKU, nodes=8, tasks_per_multipole_kernel=16)
        ).run_step()
        assert fast.makespan_s < slow.makespan_s

    def test_starvation_observed(self):
        result = TaskGraphSimulator(
            small_spec(n_subgrids=64), RunConfig(machine=FUGAKU, nodes=4)
        ).run_step()
        assert result.starvation_events > 0

    def test_comm_optimization_changes_message_count(self):
        spec = small_spec()
        on = TaskGraphSimulator(
            spec, RunConfig(machine=FUGAKU, nodes=2, comm_local_optimization=True)
        ).run_step()
        off = TaskGraphSimulator(
            spec, RunConfig(machine=FUGAKU, nodes=2, comm_local_optimization=False)
        ).run_step()
        # Without the optimization, local faces also go through the network
        # (action path) and show up as messages.
        assert off.messages > on.messages

    def test_simd_speeds_up_des(self):
        spec = small_spec()
        sve = TaskGraphSimulator(spec, RunConfig(machine=OOKAMI, nodes=2, simd=True)).run_step()
        scalar = TaskGraphSimulator(spec, RunConfig(machine=OOKAMI, nodes=2, simd=False)).run_step()
        assert 1.5 < scalar.makespan_s / sve.makespan_s < 3.5


class TestCrossValidation:
    @pytest.mark.parametrize("nodes", [1, 2, 4])
    def test_des_within_factor_two_of_analytic(self, nodes):
        """The DES and the analytic model share the cost constants; their
        makespans must agree within a factor of ~2 (the DES resolves the
        critical path the analytic model approximates)."""
        spec = small_spec(n_subgrids=512)
        config = RunConfig(machine=FUGAKU, nodes=nodes)
        des = TaskGraphSimulator(spec, config).run_step()
        model = simulate_step(spec, config)
        ratio = des.makespan_s / model.total_s
        assert 0.4 < ratio < 2.5, ratio

    def test_both_show_same_direction_for_splitting(self):
        spec = small_spec(n_subgrids=512)
        directions = []
        for simulator in ("des", "model"):
            outs = []
            for k in (1, 16):
                config = RunConfig(machine=FUGAKU, nodes=8, tasks_per_multipole_kernel=k)
                if simulator == "des":
                    outs.append(TaskGraphSimulator(spec, config).run_step().makespan_s)
                else:
                    outs.append(simulate_step(spec, config).total_s)
            directions.append(outs[1] < outs[0])
        assert directions[0] == directions[1] is True
