"""Effect sets, race detection (dynamic + static), memory-space sanitizer.

The seeded-defect tests are the acceptance gate: a deliberately injected
race and a deliberate space violation must each be caught by *both* the
dynamic and the static checker, while the repo's known-good schedules
(one full blast driver step; the cached-plan FMM solver) must come back
with zero findings.
"""

import numpy as np
import pytest

from repro.amt.future import when_all
from repro.amt.locality import Runtime
from repro.analysis import (
    ANY,
    EffectRegistry,
    EffectSet,
    GraphTask,
    MemorySpaceViolation,
    RaceDetector,
    RaceError,
    Resource,
    check_graph,
    check_space_discipline,
    declare_effects,
    effects_of,
    sanitizer_mode,
)
from repro.kokkos import DeviceSpaceTag, View, deep_copy


# -- effect sets --------------------------------------------------------------


class TestResources:
    def test_concrete_overlap_is_equality(self):
        assert Resource(1, "U").overlaps(Resource(1, "U"))
        assert not Resource(1, "U").overlaps(Resource(2, "U"))
        assert not Resource(1, "U").overlaps(Resource(1, "phi"))
        assert not Resource(1, "U", "Host").overlaps(Resource(1, "U", "Device"))

    def test_wildcard_overlaps_everything(self):
        assert Resource(ANY, "moments").overlaps(Resource(7, "moments"))
        assert Resource(1, ANY).overlaps(Resource(1, "U"))
        assert not Resource(ANY, "moments").overlaps(Resource(7, "U"))

    def test_concreteness(self):
        assert Resource(1, "U").is_concrete
        assert not Resource(ANY, "U").is_concrete


class TestEffectSets:
    def test_read_read_commutes(self):
        a = EffectSet.make(reads=[(1, "U")])
        assert a.conflicts_with(a) == []

    def test_accum_accum_commutes(self):
        a = EffectSet.make(accums=[(1, "local")])
        assert a.conflicts_with(a) == []

    def test_write_conflicts_with_everything(self):
        w = EffectSet.make(writes=[(1, "U")])
        assert w.conflicts_with(EffectSet.make(reads=[(1, "U")]))
        assert w.conflicts_with(EffectSet.make(writes=[(1, "U")]))
        assert w.conflicts_with(EffectSet.make(accums=[(1, "U")]))

    def test_accum_conflicts_with_read(self):
        a = EffectSet.make(accums=[(1, "local")])
        assert a.conflicts_with(EffectSet.make(reads=[(1, "local")]))

    def test_disjoint_footprints_never_conflict(self):
        a = EffectSet.make(writes=[(1, "U")])
        b = EffectSet.make(writes=[(2, "U")], reads=[(2, "phi")])
        assert a.conflicts_with(b) == []

    def test_decorator_and_registry(self):
        @declare_effects(reads=[(0, "U")], writes=[(0, "phi")])
        def kernel():
            return 42

        assert kernel() == 42  # unchanged callable, no wrapper
        assert effects_of(kernel).reads == frozenset({Resource(0, "U")})

        registry = EffectRegistry()
        registry.register("fmm.p2p", lambda sg: EffectSet.make(writes=[(sg, "phi")]))
        assert "fmm.p2p" in registry
        assert registry.effects_for("fmm.p2p", 3).writes == frozenset({Resource(3, "phi")})
        with pytest.raises(ValueError):
            registry.register("fmm.p2p", lambda sg: EffectSet())


# -- dynamic race detection ---------------------------------------------------


def make_runtime_with_detector(**kwargs):
    runtime = Runtime(1, 2)
    detector = RaceDetector(**kwargs)
    runtime.install_observer(detector)
    return runtime, detector


class TestDynamicDetector:
    def test_seeded_race_detected(self):
        """Two unordered writers of the same resource — the seeded race."""
        runtime, detector = make_runtime_with_detector()
        loc = runtime.here()
        effects = EffectSet.make(writes=[(0, "U")])
        f1 = loc.async_(None, cost=1.0, name="writer-a", effects=effects)
        f2 = loc.async_(None, cost=1.0, name="writer-b", effects=effects)
        runtime.run_until_ready(when_all([f1, f2]))
        assert len(detector.findings) == 1
        finding = detector.findings[0]
        assert {finding.task_a, finding.task_b} == {"writer-a", "writer-b"}
        assert "no happens-before" in str(finding)

    def test_detector_flags_schedules_not_interleavings(self):
        """Even on ONE worker (forcibly serialised) the unordered pair is
        still a race: the ordering was luck, not a dependency."""
        runtime = Runtime(1, 1)
        detector = RaceDetector()
        runtime.install_observer(detector)
        effects = EffectSet.make(writes=[(0, "U")])
        f1 = runtime.here().async_(None, cost=1.0, name="a", effects=effects)
        f2 = runtime.here().async_(None, cost=1.0, name="b", effects=effects)
        runtime.run_until_ready(when_all([f1, f2]))
        assert len(detector.findings) == 1

    def test_dependency_edge_clears_the_race(self):
        runtime, detector = make_runtime_with_detector()
        loc = runtime.here()
        effects = EffectSet.make(writes=[(0, "U")])
        f1 = loc.async_(None, cost=1.0, name="a", effects=effects)
        f2 = loc.async_after([f1], None, cost=1.0, name="b", effects=effects)
        runtime.run_until_ready(f2)
        assert detector.findings == []
        assert detector.tasks_checked == 2

    def test_when_all_barrier_transports_causality(self):
        """stage writers -> when_all -> next-stage writers: ordered."""
        runtime, detector = make_runtime_with_detector()
        loc = runtime.here()
        stage1 = [
            loc.async_(None, cost=1.0, name=f"s1.{i}",
                       effects=EffectSet.make(writes=[(i, "U")]))
            for i in range(4)
        ]
        barrier = when_all(stage1)
        stage2 = [
            loc.async_after([barrier], None, cost=1.0, name=f"s2.{i}",
                            effects=EffectSet.make(writes=[(i, "U")]))
            for i in range(4)
        ]
        runtime.run_until_ready(when_all(stage2))
        assert detector.findings == []

    def test_unordered_accums_commute(self):
        runtime, detector = make_runtime_with_detector()
        loc = runtime.here()
        effects = EffectSet.make(accums=[(0, "local")])
        fs = [loc.async_(None, cost=1.0, name=f"m2l.{i}", effects=effects)
              for i in range(4)]
        runtime.run_until_ready(when_all(fs))
        assert detector.findings == []

    def test_accum_vs_unordered_reader_is_a_race(self):
        runtime, detector = make_runtime_with_detector()
        loc = runtime.here()
        f1 = loc.async_(None, cost=1.0, name="acc",
                        effects=EffectSet.make(accums=[(0, "local")]))
        f2 = loc.async_(None, cost=1.0, name="reader",
                        effects=EffectSet.make(reads=[(0, "local")]))
        runtime.run_until_ready(when_all([f1, f2]))
        assert len(detector.findings) == 1

    def test_fork_edge_orders_child_with_parent(self):
        """A task spawned inside a running payload inherits its clock."""
        runtime, detector = make_runtime_with_detector()
        loc = runtime.here()
        effects = EffectSet.make(writes=[(0, "U")])
        child = []

        def parent_body():
            child.append(loc.async_(None, cost=1.0, name="child", effects=effects))

        parent = loc.async_(parent_body, cost=1.0, name="parent", effects=effects)
        runtime.run_until_ready(parent)
        runtime.run_until_ready(child[0])
        assert detector.findings == []

    def test_raise_on_finding(self):
        runtime, detector = make_runtime_with_detector(raise_on_finding=True)
        loc = runtime.here()
        effects = EffectSet.make(writes=[(0, "U")])
        with pytest.raises(RaceError):
            # The scheduler may start tasks as soon as a worker is free, so
            # the raise can surface at submission or while running.
            loc.async_(None, cost=1.0, name="a", effects=effects)
            loc.async_(None, cost=1.0, name="b", effects=effects)
            runtime.run(max_events=100)

    def test_undeclared_tasks_propagate_causality_unchecked(self):
        runtime, detector = make_runtime_with_detector()
        loc = runtime.here()
        effects = EffectSet.make(writes=[(0, "U")])
        f1 = loc.async_(None, cost=1.0, name="w1", effects=effects)
        mid = loc.async_after([f1], None, cost=1.0, name="plain")  # no effects
        f2 = loc.async_after([mid], None, cost=1.0, name="w2", effects=effects)
        runtime.run_until_ready(f2)
        assert detector.findings == []
        assert detector.tasks_checked == 2
        assert detector.tasks_seen == 3


# -- static checking ----------------------------------------------------------


class TestStaticChecker:
    def seeded_race_graph(self, with_edge):
        w = EffectSet.make(writes=[(0, "U")])
        return [
            GraphTask(id=0, name="a", effects=w),
            GraphTask(id=1, name="b", deps=(0,) if with_edge else (), effects=w),
        ]

    def test_seeded_race_detected_statically(self):
        findings = check_graph(self.seeded_race_graph(with_edge=False))
        assert len(findings) == 1
        assert findings[0].kind == "race"

    def test_edge_clears_static_race(self):
        assert check_graph(self.seeded_race_graph(with_edge=True)) == []

    def test_transitive_ordering(self):
        w = EffectSet.make(writes=[(0, "U")])
        nodes = [
            GraphTask(id=0, name="a", effects=w),
            GraphTask(id=1, name="mid", deps=(0,)),  # effect-free barrier
            GraphTask(id=2, name="b", deps=(1,), effects=w),
        ]
        assert check_graph(nodes) == []

    def test_diamond_siblings_race(self):
        w = EffectSet.make(writes=[(0, "U")])
        nodes = [
            GraphTask(id=0, name="root", effects=EffectSet.make(reads=[(0, "U")])),
            GraphTask(id=1, name="left", deps=(0,), effects=w),
            GraphTask(id=2, name="right", deps=(0,), effects=w),
        ]
        findings = check_graph(nodes)
        assert len(findings) == 1
        assert {findings[0].task_a, findings[0].task_b} == {"left", "right"}

    def test_non_topological_emission_rejected(self):
        nodes = [GraphTask(id=0, name="a", deps=(1,)), GraphTask(id=1, name="b")]
        with pytest.raises(ValueError):
            check_graph(nodes)

    def test_seeded_space_violation_detected_statically(self):
        """Host-executing node touching a Device resource — the seeded
        space violation, static half."""
        nodes = [
            GraphTask(
                id=0, name="host-kernel", exec_space="Host",
                effects=EffectSet.make(writes=[Resource(0, "U", "Device")]),
            )
        ]
        findings = check_space_discipline(nodes)
        assert len(findings) == 1
        assert findings[0].kind == "space-mismatch"
        assert check_graph(nodes) == findings  # check_graph folds it in

    def test_deep_copy_is_the_sanctioned_crossing(self):
        nodes = [
            GraphTask(
                id=0, name="h2d", exec_space="Host", kind="deep_copy",
                effects=EffectSet.make(writes=[Resource(0, "U", "Device")],
                                       reads=[Resource(0, "U", "Host")]),
            )
        ]
        assert check_space_discipline(nodes) == []


# -- memory-space sanitizer ---------------------------------------------------


class TestSpaceSanitizer:
    def test_seeded_space_violation_detected_dynamically(self):
        """Host access to a device view — the seeded violation, dynamic half."""
        dev = View("rho", (4,), space=DeviceSpaceTag)
        with sanitizer_mode():
            with pytest.raises(MemorySpaceViolation):
                dev[0]
            with pytest.raises(MemorySpaceViolation):
                dev[0] = 1.0
            with pytest.raises(MemorySpaceViolation):
                dev.data

    def test_collect_mode_reports_without_raising(self):
        dev = View("rho", (4,), space=DeviceSpaceTag)
        with sanitizer_mode(collect=True) as findings:
            _ = dev.nbytes  # metadata stays legal
            dev[1] = 2.0
            np.asarray(dev.data)
        assert [f.op for f in findings] == ["write", "raw-data"]
        assert all(f.label == "rho" and f.space == "Device" for f in findings)

    def test_host_views_and_deep_copy_are_clean(self):
        host = View("h", (4,))
        dev = View("d", (4,), space=DeviceSpaceTag)
        with sanitizer_mode(collect=True) as findings:
            host[0] = 1.0
            _ = host.data
            deep_copy(dev, host)
            deep_copy(host, dev)
        assert findings == []

    def test_checks_off_outside_sanitizer_mode(self):
        dev = View("rho", (4,), space=DeviceSpaceTag)
        dev[0] = 1.0  # legal: simulation views are host arrays in truth
        assert dev[0] == 1.0


# -- known-good schedules: zero findings --------------------------------------


class TestKnownGoodSchedules:
    def test_step_graph_statically_race_free(self):
        from repro.distsim import RunConfig, TaskGraphSimulator
        from repro.machines import FUGAKU
        from repro.scenarios.spec import ScenarioSpec

        spec = ScenarioSpec(name="clean", n_subgrids=27, max_level=3)
        for nodes in (1, 2):
            sim = TaskGraphSimulator(spec, RunConfig(machine=FUGAKU, nodes=nodes))
            assert sim.static_check() == []

    def test_step_graph_dynamically_race_free(self):
        from repro.distsim import RunConfig, TaskGraphSimulator
        from repro.machines import FUGAKU
        from repro.scenarios.spec import ScenarioSpec

        spec = ScenarioSpec(name="clean", n_subgrids=27, max_level=3)
        sim = TaskGraphSimulator(spec, RunConfig(machine=FUGAKU, nodes=2))
        detector = RaceDetector(raise_on_finding=True)
        result = sim.run_step(detector=detector)
        assert detector.findings == []
        assert detector.tasks_checked == result.tasks  # every pool task declared

    def test_blast_driver_step_sanitized_zero_findings(self):
        """One full driver step of the blast scenario under the whole
        analysis suite: physics + space sanitizer + static & dynamic race
        checks, zero false positives."""
        from repro.core import OctoTigerSim
        from repro.scenarios import sedov_blast

        scenario = sedov_blast(levels=2)
        sim = OctoTigerSim(scenario.mesh, eos=scenario.eos, nodes=2, sanitize=True)
        record = sim.step()
        assert record.dt > 0
        assert sim.sanitizer_findings == []
        assert sim.counters.total("sanitize.tasks_checked") > 0

    def test_fmm_plan_path_sanitized_and_exact(self):
        """The cached-traversal-plan FMM path (cold build + warm reuse)
        under the space sanitizer: zero findings, numerics unchanged."""
        from repro.gravity.fmm import FmmSolver
        from tests.conftest import fill_gaussian, make_uniform_mesh

        mesh = make_uniform_mesh(levels=1)
        fill_gaussian(mesh)
        solver = FmmSolver(order=2)
        with sanitizer_mode(collect=True) as findings:
            cold = solver.solve(mesh)   # builds + caches the plan
            warm = solver.solve(mesh)   # reuses it
            reference = solver.solve_reference(mesh)
        assert findings == []
        for key in cold.phi:
            np.testing.assert_allclose(warm.phi[key], cold.phi[key], rtol=0, atol=0)
            np.testing.assert_allclose(cold.phi[key], reference.phi[key],
                                       rtol=1e-12, atol=1e-12)
