"""Sweep helpers: node series, speedups, weak scaling, partitions."""

import pytest

from repro.distsim.sweep import (
    min_nodes_for,
    node_series,
    scaling_curve,
    speedup_series,
    weak_scaling_curve,
)
from repro.machines import FUGAKU, SUMMIT
from repro.octree.partition import (
    partition_stats,
    round_robin_partition,
    sfc_partition,
)
from repro.scenarios import rotating_star

from tests.conftest import make_uniform_mesh


class TestNodeSeries:
    def test_powers_of_two(self):
        assert node_series(1, 16) == [1, 2, 4, 8, 16]
        assert node_series(4, 4) == [4]
        assert node_series(3, 20) == [3, 6, 12]

    def test_validation(self):
        with pytest.raises(ValueError):
            node_series(0, 8)
        with pytest.raises(ValueError):
            node_series(8, 4)


class TestSpeedupSeries:
    def test_empty(self):
        assert speedup_series([]) == []

    def test_first_is_one(self):
        spec = rotating_star(level=5, build_mesh=False).spec
        curve = scaling_curve(spec, FUGAKU, [2, 4, 8])
        s = speedup_series(curve)
        assert s[0] == pytest.approx(1.0)
        assert len(s) == 3


class TestWeakScaling:
    def test_workload_grows_with_nodes(self):
        spec = rotating_star(level=5, build_mesh=False).spec
        curve = weak_scaling_curve(spec, FUGAKU, [1, 4], subgrids_per_node=1000)
        assert curve[0].subgrids_per_node == pytest.approx(1000)
        assert curve[1].subgrids_per_node == pytest.approx(1000)
        # Aggregate throughput grows while per-node time degrades mildly.
        assert curve[1].cells_per_second > 3.0 * curve[0].cells_per_second
        assert curve[1].total_s >= curve[0].total_s

    def test_default_subgrids_per_node(self):
        spec = rotating_star(level=5, build_mesh=False).spec
        curve = weak_scaling_curve(spec, FUGAKU, [1])
        assert curve[0].subgrids_per_node == pytest.approx(spec.n_subgrids)


class TestMinNodes:
    def test_summit_fits_everything_small(self):
        spec = rotating_star(level=5, build_mesh=False).spec
        assert min_nodes_for(spec, SUMMIT) == 1

    def test_power_of_two_default(self):
        from repro.scenarios import v1309_scenario

        spec = v1309_scenario(level=11, build_mesh=False).spec
        nodes = min_nodes_for(spec, FUGAKU)
        assert nodes & (nodes - 1) == 0


class TestRoundRobinPartition:
    def test_assigns_everything(self):
        mesh = make_uniform_mesh(levels=2)
        assignment = round_robin_partition(mesh, 8)
        assert len(assignment) == 64
        assert set(assignment.values()) == set(range(8))

    def test_balanced_counts(self):
        mesh = make_uniform_mesh(levels=2)
        round_robin_partition(mesh, 8)
        stats = partition_stats(mesh, 8)
        assert max(stats.subgrids_per_locality) - min(stats.subgrids_per_locality) <= 1

    def test_sfc_beats_round_robin_on_locality(self):
        mesh = make_uniform_mesh(levels=2)
        sfc_partition(mesh, 8)
        sfc = partition_stats(mesh, 8).remote_fraction
        round_robin_partition(mesh, 8)
        naive = partition_stats(mesh, 8).remote_fraction
        assert sfc < naive

    def test_validation(self):
        mesh = make_uniform_mesh(levels=1)
        with pytest.raises(ValueError):
            round_robin_partition(mesh, 0)
