"""Hang/deadlock modelling and message-loss fault injection."""

import math

import pytest

from repro.distsim.reliability import (
    ReliabilityModel,
    empirical_hang_probability,
    hang_probability_curve,
    messages_per_step,
)
from repro.distsim.runconfig import RunConfig
from repro.machines import FUGAKU, OOKAMI
from repro.scenarios import rotating_star
from repro.scenarios.spec import ScenarioSpec


@pytest.fixture(scope="module")
def level5():
    return rotating_star(level=5, build_mesh=False).spec


class TestMessageCounts:
    def test_single_node_sends_nothing(self, level5):
        assert messages_per_step(level5, RunConfig(machine=FUGAKU, nodes=1)) == 0.0

    def test_messages_grow_with_nodes(self, level5):
        counts = [
            messages_per_step(level5, RunConfig(machine=FUGAKU, nodes=n))
            for n in (2, 16, 128)
        ]
        assert counts[0] < counts[1] < counts[2]


class TestReliabilityModel:
    def test_calibration_round_trip(self):
        model = ReliabilityModel.calibrate(0.05, messages=1e6)
        assert model.hang_probability(1e6) == pytest.approx(0.05)

    def test_more_messages_more_hangs(self):
        model = ReliabilityModel(1e-7)
        assert model.hang_probability(1e7) > model.hang_probability(1e5)

    def test_expected_attempts(self):
        model = ReliabilityModel.calibrate(0.5, messages=100.0)
        assert model.expected_attempts(100.0) == pytest.approx(2.0)
        assert model.expected_attempts(0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityModel.calibrate(0.0, 100.0)
        with pytest.raises(ValueError):
            ReliabilityModel.calibrate(0.5, 0.0)
        with pytest.raises(ValueError):
            ReliabilityModel(1e-9).hang_probability(-1.0)

    def test_papers_observation_extrapolates_to_fugaku_hangs(self, level5):
        """Calibrate lambda on 'about 1 out of 20 runs' deadlocking on the
        level-5 Ookami runs, then predict the hang probability of the
        larger Fugaku runs (levels 6/7 at 512-1024 nodes, ~5-20x the
        message volume) — clearly elevated, consistent with the paper
        failing to debug hangs at those scales."""
        ookami_messages = messages_per_step(
            level5, RunConfig(machine=OOKAMI, nodes=128)
        ) * 100  # a ~100-step benchmark run
        model = ReliabilityModel.calibrate(0.05, ookami_messages)

        level6 = rotating_star(level=6, build_mesh=False).spec
        level7 = rotating_star(level=7, build_mesh=False).spec
        p5 = dict(hang_probability_curve(level5, model, FUGAKU, [128], steps=100))
        p6 = dict(hang_probability_curve(level6, model, FUGAKU, [1024], steps=100))
        p7 = dict(hang_probability_curve(level7, model, FUGAKU, [1024], steps=100))
        assert p6[1024] > p5[128]
        assert p7[1024] > p6[1024]
        assert p7[1024] > 0.3  # the big runs hang more often than not-rarely


class TestFaultInjection:
    def test_lost_ghost_message_deadlocks_the_step(self):
        """Drop one ghost message in the distributed driver: the dependency
        graph stalls and the runtime reports a deadlock instead of silently
        producing wrong data — the paper's hang, reproduced in miniature."""
        from tests.test_distributed_driver import build_mesh
        from repro.core.distributed import DistributedHydroDriver
        from repro.machines import FUGAKU as M

        mesh, eos = build_mesh()
        driver = DistributedHydroDriver(
            mesh, eos, config=RunConfig(machine=M, nodes=2)
        )
        original = driver._network

        def sabotaged():
            net = original()
            net.drop_message(3)
            return net

        driver._network = sabotaged
        with pytest.raises(RuntimeError, match="deadlock|never resolved"):
            driver.step(1e-3)

    def test_network_drop_accounting(self):
        from repro.amt.engine import Engine
        from repro.amt.network import Message, NetworkModel

        engine = Engine()
        net = NetworkModel()
        net.drop_message(1)
        delivered = []
        net.send(engine, Message(0, 1, "a", 10), lambda m: delivered.append(m))
        net.send(engine, Message(0, 1, "b", 10), lambda m: delivered.append(m))
        engine.run()
        assert [m.payload for m in delivered] == ["a"]
        assert net.messages_dropped == 1
        assert net.messages_sent == 2


class TestMonteCarloCrossValidation:
    """The closed-form hang model vs actual injected-fault runs.

    ``empirical_hang_probability`` executes the step task graph once per
    seed under a Bernoulli(p) per-message drop schedule with no recovery:
    any lost ghost message wedges the graph and the watchdog reports a
    deadlock.  The observed hang fraction must sit on the analytic
    ``P(hang) = 1 - (1-p)^M`` curve evaluated at the *measured* message
    count — the paper's "1 out of 20 runs deadlock" observation, turned
    into a checked prediction.
    """

    SPEC = ScenarioSpec(name="mc", n_subgrids=8, max_level=1)
    CONFIG = RunConfig(machine=FUGAKU, nodes=4)

    def test_hang_fraction_matches_analytic_curve(self):
        result = empirical_hang_probability(
            self.SPEC, self.CONFIG, drop_rate=0.01, seeds=range(60)
        )
        # Meaningful sample: some runs hang, some survive.
        assert 0 < result.hangs < result.runs
        predicted = result.predicted_hang_probability(0.01)
        # 60 seeded runs at p~0.38: binomial sigma ~ 0.063; the schedule is
        # deterministic, so 0.12 (~2 sigma) only guards implementation drift.
        assert abs(result.hang_fraction - predicted) < 0.12

    def test_higher_drop_rate_hangs_more(self):
        low = empirical_hang_probability(
            self.SPEC, self.CONFIG, drop_rate=0.002, seeds=range(40)
        )
        high = empirical_hang_probability(
            self.SPEC, self.CONFIG, drop_rate=0.05, seeds=range(40)
        )
        assert low.hang_fraction < high.hang_fraction
        assert high.hang_fraction > 0.5  # 1-(1-.05)^48 ~ 0.91

    def test_analytic_message_count_brackets_the_measured_one(self):
        """:func:`messages_per_step` counts every RK stage's ghost faces
        analytically; the executed task graph batches the exchange, so the
        two agree to a small documented factor, not exactly.  Keeping them
        within [1x, 6x] pins the scale of the model without overfitting."""
        result = empirical_hang_probability(
            self.SPEC, self.CONFIG, drop_rate=0.01, seeds=range(1)
        )
        analytic = messages_per_step(self.SPEC, self.CONFIG)
        measured = result.messages_per_clean_step
        assert measured > 0
        assert measured <= analytic <= 6 * measured
