"""Backend-equivalence harness: seed path vs array-backend dispatch.

Two tiers (see :mod:`repro.core.crosscheck`): *exact* pins dispatch
through the ``numpy`` backend to identical bits, *tolerance* bounds the
preferred JIT backend by the declared per-field budgets.  The hypothesis
sweep drives regrids mid-run so the per-topology kernel scratch is
invalidated and rebuilt on both sides.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.spacesan import sanitizer_mode
from repro.core.crosscheck import (
    CONSERVED_DRIFT_BUDGET,
    FIELD_NAMES,
    TOLERANCE_BUDGETS,
    crosscheck_array_backend,
)
from repro.gravity.fmm import FmmSolver
from repro.hydro.integrator import HydroIntegrator
from repro.kokkos import (
    DeviceSpaceTag,
    View,
    available_backends,
    deep_copy,
    get_backend,
    jit_backend_name,
    reset_transfer_counter,
)
from repro.kokkos.view import transfer_counter
from repro.scenarios.blast import sedov_blast
from repro.scenarios.dwd import dwd_scenario

#: Host-storage backends installed here (device backends would need the
#: mesh storage itself rerouted; they are exercised by the View tests).
HOST_BACKENDS = [
    n for n in available_backends() if not get_backend(n).is_device
]


class TestExactTier:
    """Seed kernels vs numpy-dispatch: same bits, different call path."""

    def test_blast_bit_identical(self):
        blast = sedov_blast(levels=1)
        r = crosscheck_array_backend(
            blast.mesh, "numpy", tier="exact", steps=3, eos=blast.eos
        )
        assert r.tier == "exact" and r.backend_name == "numpy"
        assert r.max_rel_err == 0.0

    def test_dwd_with_gravity_bit_identical(self):
        dwd = dwd_scenario(level=1, scf_grid=16)

        def gravity(array_backend):
            return FmmSolver(
                empty_mass_threshold=1e-12, array_backend=array_backend
            ).as_gravity_callback()

        r = crosscheck_array_backend(
            dwd.mesh, "numpy", tier="exact", steps=2, eos=dwd.eos,
            omega=dwd.omega, gravity=gravity,
        )
        assert r.max_rel_err == 0.0

    def test_fmm_numpy_dispatch_bit_identical(self):
        mesh = sedov_blast(levels=1).mesh
        seed = FmmSolver(empty_mass_threshold=1e-12).solve(mesh)
        alt = FmmSolver(
            empty_mass_threshold=1e-12, array_backend="numpy"
        ).solve(mesh)
        for key in seed.phi:
            assert np.array_equal(seed.phi[key], alt.phi[key])
            assert np.array_equal(seed.accel[key], alt.accel[key])


class TestToleranceTier:
    """Seed kernels vs the JIT backend, gated by the declared budgets."""

    def test_budgets_are_declared_per_field(self):
        assert set(TOLERANCE_BUDGETS) == set(FIELD_NAMES)
        assert all(0.0 < b < 1e-6 for b in TOLERANCE_BUDGETS.values())
        assert 0.0 < CONSERVED_DRIFT_BUDGET < 1e-6

    def test_blast_within_budgets(self):
        blast = sedov_blast(levels=1)
        r = crosscheck_array_backend(
            blast.mesh, jit_backend_name(), tier="tolerance", steps=3,
            eos=blast.eos,
        )
        assert r.tier == "tolerance"
        assert r.max_rel_err <= max(TOLERANCE_BUDGETS.values())

    def test_dwd_with_gravity_within_budgets(self):
        dwd = dwd_scenario(level=1, scf_grid=16)

        def gravity(array_backend):
            return FmmSolver(
                empty_mass_threshold=1e-12, array_backend=array_backend
            ).as_gravity_callback()

        crosscheck_array_backend(
            dwd.mesh, jit_backend_name(), tier="tolerance", steps=2,
            eos=dwd.eos, omega=dwd.omega, gravity=gravity,
        )

    def test_reflux_faces_within_budgets(self):
        """An adaptive mesh with true coarse-fine faces: the JIT face
        collection feeds refluxing (uniformly refined meshes never do)."""
        blast = sedov_blast(levels=1)
        first = sorted(leaf.key for leaf in blast.mesh.leaves())[0]
        blast.mesh.refine(first)
        crosscheck_array_backend(
            blast.mesh, jit_backend_name(), tier="tolerance", steps=2,
            eos=blast.eos,
        )

    def test_invalid_tier_rejected(self):
        blast = sedov_blast(levels=1)
        with pytest.raises(ValueError):
            crosscheck_array_backend(
                blast.mesh, "numpy", tier="sloppy", steps=1, eos=blast.eos
            )


class TestRegridInvalidation:
    @given(leaf_rank=st.integers(0, 7), refine_step=st.integers(0, 1))
    @settings(max_examples=4, deadline=None)
    def test_mid_run_refine_sweep(self, leaf_rank, refine_step):
        """Refining mid-run rebuilds the plan and the per-topology kernel
        scratch on both sides; the budgets must still hold."""
        blast = sedov_blast(levels=1)

        def mutate(mesh, step):
            if step == refine_step:
                leaves = sorted(leaf.key for leaf in mesh.leaves())
                mesh.refine(leaves[leaf_rank % len(leaves)])

        crosscheck_array_backend(
            blast.mesh, jit_backend_name(), tier="tolerance", steps=2,
            eos=blast.eos, mutate=mutate,
        )


class TestTransferAccounting:
    @given(
        nx=st.integers(1, 6),
        ny=st.integers(1, 6),
        direction=st.sampled_from(["h2d", "d2h", "h2h", "d2d"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_deep_copy_counts_real_bytes(self, nx, ny, direction):
        reset_transfer_counter()
        spaces = {"h": {}, "d": {"space": DeviceSpaceTag}}
        src = View("s", (nx, ny), **spaces[direction[0]])
        dst = View("t", (nx, ny), **spaces[direction[-1]])
        deep_copy(dst, src)
        nbytes = nx * ny * 8
        assert transfer_counter["copies"] == 1
        assert transfer_counter["h2d_bytes"] == (
            nbytes if direction == "h2d" else 0
        )
        assert transfer_counter["d2h_bytes"] == (
            nbytes if direction == "d2h" else 0
        )


class TestSanitizerUnderBackends:
    @pytest.mark.parametrize("name", HOST_BACKENDS)
    def test_zero_findings_on_full_blast_step(self, name):
        blast = sedov_blast(levels=1)
        integ = HydroIntegrator(blast.mesh, eos=blast.eos, array_backend=name)
        dt = integ.timestep()
        with sanitizer_mode(collect=True) as findings:
            integ.step(dt)
        assert findings == []


class TestBackendSelectionErrors:
    def test_process_backend_rejects_jit(self):
        blast = sedov_blast(levels=1)
        with pytest.raises(ValueError):
            HydroIntegrator(
                blast.mesh, eos=blast.eos, backend="process",
                array_backend="pyjit",
            )

    def test_unknown_backend_rejected(self):
        blast = sedov_blast(levels=1)
        with pytest.raises(KeyError):
            HydroIntegrator(
                blast.mesh, eos=blast.eos, array_backend="no-such"
            )


class TestDriverWiring:
    def test_sim_threads_array_backend(self):
        from repro.core import OctoTigerSim

        blast = sedov_blast(levels=1)
        sim = OctoTigerSim(
            blast.mesh, eos=blast.eos, gravity=False,
            array_backend=jit_backend_name(),
        )
        records = list(sim.run(1))
        assert len(records) == 1
        assert sim.integrator.array_backend == jit_backend_name()
        sim.close()

    def test_config_key_selects_backend(self):
        from repro.core import OctoTigerSim
        from repro.util.config import Config

        blast = sedov_blast(levels=1)
        sim = OctoTigerSim.from_config(
            blast.mesh, Config({"kokkos.backend": "pyjit", "frame.omega": 0.0})
        )
        assert sim.integrator.array_backend == "pyjit"
        assert sim.gravity_solver.array_backend == "pyjit"
        sim.close()
