"""Worker-pool scheduler: occupancy, dependencies, statistics."""

import pytest

from repro.amt.engine import Engine
from repro.amt.future import when_all
from repro.amt.scheduler import WorkerPool
from repro.amt.task import Task, TaskState


def make_pool(workers: int = 2):
    engine = Engine()
    return engine, WorkerPool(engine, workers)


class TestExecution:
    def test_task_runs_and_resolves(self):
        engine, pool = make_pool()
        future = pool.submit_fn(lambda a, b: a + b, 2, 3, cost=1.0)
        engine.run()
        assert future.get() == 5
        assert engine.now == 1.0

    def test_worker_occupancy_serialises(self):
        # 4 unit-cost tasks on 2 workers take 2 virtual seconds.
        engine, pool = make_pool(2)
        for _ in range(4):
            pool.submit_fn(None, cost=1.0)
        engine.run()
        assert engine.now == pytest.approx(2.0)
        assert pool.tasks_completed == 4

    def test_single_worker_fifo(self):
        engine, pool = make_pool(1)
        order = []
        for i in range(5):
            pool.submit_fn(lambda i=i: order.append(i), cost=0.1)
        engine.run()
        assert order == list(range(5))

    def test_callable_cost(self):
        engine, pool = make_pool(1)
        pool.submit_fn(None, cost=lambda: 2.5)
        engine.run()
        assert engine.now == pytest.approx(2.5)

    def test_negative_cost_rejected(self):
        engine, pool = make_pool(1)
        # Dispatch is eager when a worker is idle, so the cost validation
        # fires at submission time.
        with pytest.raises(ValueError):
            pool.submit_fn(None, cost=-1.0)
            engine.run()

    def test_failing_task_sets_exception(self):
        engine, pool = make_pool(1)

        def boom():
            raise RuntimeError("kernel crashed")

        future = pool.submit_fn(boom, cost=1.0)
        engine.run()
        assert future.has_exception()
        assert pool.tasks_failed == 1


class TestDependencies:
    def test_submit_after_waits(self):
        engine, pool = make_pool(2)
        first = pool.submit_fn(lambda: "a", cost=2.0)
        second = pool.submit_after([first], Task(lambda: "b", cost=1.0))
        engine.run()
        assert second.get() == "b"
        assert engine.now == pytest.approx(3.0)

    def test_submit_after_multiple(self):
        engine, pool = make_pool(4)
        deps = [pool.submit_fn(None, cost=c) for c in (1.0, 3.0, 2.0)]
        done = pool.submit_after(deps, Task(None, cost=0.5))
        engine.run()
        assert done.is_ready()
        assert engine.now == pytest.approx(3.5)

    def test_dependency_failure_cancels(self):
        engine, pool = make_pool(2)

        def boom():
            raise ValueError("dep failed")

        bad = pool.submit_fn(boom, cost=1.0)
        ran = []
        dependent = pool.submit_after([bad], Task(lambda: ran.append(1), cost=1.0))
        engine.run()
        assert dependent.has_exception()
        assert ran == []

    def test_empty_deps_run_immediately(self):
        engine, pool = make_pool(1)
        future = pool.submit_after([], Task(lambda: 7, cost=1.0))
        engine.run()
        assert future.get() == 7


class TestStatistics:
    def test_utilization_full(self):
        engine, pool = make_pool(2)
        for _ in range(4):
            pool.submit_fn(None, cost=1.0)
        engine.run()
        assert pool.utilization() == pytest.approx(1.0)

    def test_utilization_half(self):
        engine, pool = make_pool(2)
        pool.submit_fn(None, cost=2.0)  # one worker idle throughout
        engine.run()
        assert pool.utilization() == pytest.approx(0.5)

    def test_kind_accounting(self):
        engine, pool = make_pool(2)
        pool.submit_fn(None, cost=1.0, kind="hydro")
        pool.submit_fn(None, cost=2.0, kind="hydro")
        pool.submit_fn(None, cost=0.5, kind="fmm")
        engine.run()
        assert pool.kind_counts == {"hydro": 2, "fmm": 1}
        assert pool.kind_time["hydro"] == pytest.approx(3.0)

    def test_starvation_recorded_when_workers_idle(self):
        engine, pool = make_pool(4)
        pool.submit_fn(None, cost=1.0)
        engine.run()
        assert pool.starvation_events() > 0

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(Engine(), 0)


class TestShardedSubmission:
    def test_sharded_work_shrinks_makespan(self):
        # One cost-4 unit of work on 4 workers: unsplit occupies one worker
        # for 4 virtual seconds; split over 4 shards it finishes in 1.
        engine, pool = make_pool(4)
        pool.submit_sharded([], None, cost=4.0, shards=4)
        engine.run()
        assert engine.now == pytest.approx(1.0)

    def test_unsharded_is_plain_submission(self):
        engine, pool = make_pool(4)
        pool.submit_sharded([], None, cost=4.0, shards=1)
        engine.run()
        assert engine.now == pytest.approx(4.0)
        assert pool.tasks_completed == 1

    def test_payload_runs_exactly_once(self):
        engine, pool = make_pool(4)
        calls = []
        future = pool.submit_sharded([], lambda: calls.append(1), cost=2.0, shards=4)
        engine.run()
        assert calls == [1]
        assert future.is_ready()
        assert pool.tasks_completed == 4

    def test_sharded_respects_dependencies(self):
        engine, pool = make_pool(4)
        order = []
        first = pool.submit_fn(lambda: order.append("dep"), cost=1.0)
        done = pool.submit_sharded(
            [first], lambda: order.append("payload"), cost=2.0, shards=2
        )
        engine.run()
        assert order == ["dep", "payload"]
        assert done.is_ready()
        # shards start only after the dep: 1.0 + 2.0/2
        assert engine.now == pytest.approx(2.0)

    def test_sharded_kind_accounting(self):
        engine, pool = make_pool(4)
        pool.submit_sharded([], None, cost=4.0, shards=4, kind="ghost.pack")
        engine.run()
        assert pool.kind_counts["ghost.pack"] == 4
        assert pool.kind_time["ghost.pack"] == pytest.approx(4.0)

    def test_invalid_shards_rejected(self):
        engine, pool = make_pool(2)
        with pytest.raises(ValueError):
            pool.submit_sharded([], None, cost=1.0, shards=0)
