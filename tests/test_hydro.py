"""Hydrodynamics: EOS, reconstruction, Riemann solver, solver, integrator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hydro import (
    HydroIntegrator,
    IdealGasEOS,
    PolytropicEOS,
    cfl_timestep_subgrid,
    dudt_subgrid,
    exact_riemann,
    global_timestep,
    hll_flux,
    minmod,
    primitives_from_conserved,
    reconstruct_axis,
    sod_solution,
)
from repro.hydro.exact import RiemannState
from repro.hydro.riemann import PRIM_KEYS
from repro.octree import AmrMesh, Field
from repro.octree.ghost import fill_all_ghosts

from tests.conftest import make_uniform_mesh

finite_pos = st.floats(min_value=1e-6, max_value=1e3, allow_nan=False)


class TestEOS:
    def test_pressure_gamma_law(self, eos):
        assert eos.pressure(np.array(1.0), np.array(2.5)) == pytest.approx(1.0)

    def test_sound_speed(self, eos):
        c = eos.sound_speed(np.array(1.0), np.array(1.0))
        assert c == pytest.approx(np.sqrt(1.4))

    def test_tau_round_trip(self, eos):
        eint = np.array([0.3, 2.0, 17.0])
        np.testing.assert_allclose(eos.eint_from_tau(eos.tau_from_eint(eint)), eint)

    def test_dual_energy_uses_difference_when_healthy(self, eos):
        rho = np.array(1.0)
        egas = np.array(10.0)
        kinetic = np.array(1.0)
        tau = eos.tau_from_eint(np.array(5.0))  # deliberately inconsistent
        eint = eos.dual_energy_eint(rho, egas, kinetic, tau)
        assert eint == pytest.approx(9.0)

    def test_dual_energy_uses_tau_when_kinetic_dominates(self, eos):
        rho = np.array(1.0)
        egas = np.array(10.0)
        kinetic = np.array(9.9999999)  # difference below eta * egas
        tau = eos.tau_from_eint(np.array(5.0))
        eint = eos.dual_energy_eint(rho, egas, kinetic, tau)
        assert eint == pytest.approx(5.0)

    def test_polytropic_relations(self):
        poly = PolytropicEOS(K=2.0, n=1.5)
        assert poly.Gamma == pytest.approx(5.0 / 3.0)
        rho = np.array([0.0, 0.5, 2.0])
        h = poly.enthalpy(rho)
        np.testing.assert_allclose(poly.rho_from_enthalpy(h), rho, atol=1e-12)
        # eps * rho == n * p.
        np.testing.assert_allclose(
            poly.internal_energy_density(rho), poly.n * poly.pressure(rho)
        )

    def test_polytropic_negative_enthalpy_is_vacuum(self):
        poly = PolytropicEOS()
        assert poly.rho_from_enthalpy(np.array(-1.0)) == 0.0


class TestMinmod:
    def test_same_sign_takes_smaller(self):
        assert minmod(np.array(2.0), np.array(3.0)) == 2.0
        assert minmod(np.array(-3.0), np.array(-1.0)) == -1.0

    def test_opposite_signs_zero(self):
        assert minmod(np.array(-1.0), np.array(2.0)) == 0.0

    def test_zero_input(self):
        assert minmod(np.array(0.0), np.array(5.0)) == 0.0

    @given(
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
    def test_bounded_by_inputs(self, a, b):
        m = float(minmod(np.array(a), np.array(b)))
        assert abs(m) <= abs(a) + 1e-15
        assert abs(m) <= abs(b) + 1e-15


class TestReconstruction:
    def test_face_count(self):
        w = np.arange(12.0)
        wl, wr = reconstruct_axis(w, 0)
        assert wl.shape[0] == 9  # M - 3 faces
        assert wr.shape[0] == 9

    def test_linear_profile_reconstructed_exactly(self):
        w = 2.0 + 0.5 * np.arange(12.0)
        wl, wr = reconstruct_axis(w, 0)
        # For a linear profile both sides of each face agree at the face.
        np.testing.assert_allclose(wl, wr, rtol=1e-13)

    def test_constant_profile(self):
        w = np.full(10, 3.0)
        wl, wr = reconstruct_axis(w, 0)
        assert np.allclose(wl, 3.0) and np.allclose(wr, 3.0)

    def test_works_along_any_axis(self):
        w = np.random.default_rng(0).random((8, 8, 8))
        for axis in range(3):
            wl, wr = reconstruct_axis(w, axis)
            assert wl.shape[axis] == 5

    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=4, max_size=30))
    @settings(max_examples=50)
    def test_no_new_extrema(self, values):
        """TVD property: reconstructed face states stay within the range of
        the neighbouring cell averages."""
        w = np.array(values)
        wl, wr = reconstruct_axis(w, 0)
        for j in range(wl.shape[0]):
            lo = min(w[j + 1], w[j + 2]) - 1e-9
            hi = max(w[j + 1], w[j + 2]) + 1e-9
            # Left state belongs to cell j+1, bounded by its neighbours.
            assert min(w[j], w[j + 1], w[j + 2]) - 1e-9 <= wl[j] <= max(
                w[j], w[j + 1], w[j + 2]
            ) + 1e-9
            assert lo <= wr[j] or wr[j] <= hi  # wr within neighbour range


class TestHLL:
    def make_state(self, rho, v, p, axis=0):
        shape = (4,)
        zeros = np.zeros(shape)
        w = {k: zeros.copy() for k in PRIM_KEYS}
        w["rho"] = np.full(shape, rho)
        w[("vx", "vy", "vz")[axis]] = np.full(shape, v)
        w["p"] = np.full(shape, p)
        w["tau"] = np.full(shape, 1.0)
        return w

    def test_uniform_state_flux_is_advective(self, eos):
        w = self.make_state(1.0, 2.0, 1.0)
        flux, signal = hll_flux(w, w, 0, eos)
        assert np.allclose(flux[Field.RHO], 2.0)  # rho * u
        assert signal.max() > 2.0

    def test_static_contact_hll_diffusion(self, eos):
        wl = self.make_state(1.0, 0.0, 1.0)
        wr = self.make_state(0.5, 0.0, 1.0)
        flux, _ = hll_flux(wl, wr, 0, eos)
        # HLL smears contacts: the mass flux equals the analytic HLL value
        # S_L S_R (rho_R - rho_L) / (S_R - S_L) with S = -/+ max sound speed.
        c = float(eos.sound_speed(np.array(0.5), np.array(1.0)))
        expected = (c * c) * (0.5 - 1.0) / (2 * c) * -1.0
        assert np.allclose(flux[Field.RHO], expected, rtol=1e-12)
        assert np.allclose(flux[Field.SX], 1.0, rtol=1e-10)

    def test_supersonic_upwinding(self, eos):
        wl = self.make_state(1.0, 10.0, 1.0)
        wr = self.make_state(2.0, 10.0, 1.0)
        flux, _ = hll_flux(wl, wr, 0, eos)
        # Flow is supersonic to the right: flux must equal the left flux.
        assert np.allclose(flux[Field.RHO], 10.0)

    def test_symmetry_under_reflection(self, eos):
        """Mirroring left/right and the velocity sign flips the mass flux."""
        wl = self.make_state(1.0, 0.3, 1.0)
        wr = self.make_state(0.125, -0.1, 0.1)
        flux_fwd, _ = hll_flux(wl, wr, 0, eos)

        wl_m = self.make_state(0.125, 0.1, 0.1)
        wr_m = self.make_state(1.0, -0.3, 1.0)
        flux_rev, _ = hll_flux(wl_m, wr_m, 0, eos)
        assert flux_fwd[Field.RHO][0] == pytest.approx(-flux_rev[Field.RHO][0])

    def test_works_on_each_axis(self, eos):
        for axis in range(3):
            w = self.make_state(1.0, 1.0, 1.0, axis=axis)
            flux, _ = hll_flux(w, w, axis, eos)
            assert np.allclose(flux[Field.SX + axis], 1.0 + 1.0)  # rho v^2 + p


class TestExactRiemann:
    def test_sod_star_region(self):
        # Toro's reference values for the Sod problem.
        left = RiemannState(1.0, 0.0, 1.0)
        right = RiemannState(0.125, 0.0, 0.1)
        rho, u, p = exact_riemann(left, right, np.array([0.0]), gamma=1.4)
        assert p[0] == pytest.approx(0.30313, rel=1e-4)
        assert u[0] == pytest.approx(0.92745, rel=1e-4)

    def test_sod_limits(self):
        x = np.array([0.0, 1.0])
        rho, u, p = sod_solution(x, t=0.05, x0=0.5)
        assert rho[0] == pytest.approx(1.0)
        assert rho[1] == pytest.approx(0.125)

    def test_t_zero_initial_condition(self):
        x = np.linspace(0, 1, 11)
        rho, u, p = sod_solution(x, t=0.0, x0=0.5)
        assert (u == 0).all()
        assert rho[0] == 1.0 and rho[-1] == 0.125

    def test_symmetric_expansion(self):
        left = RiemannState(1.0, -1.0, 1.0)
        right = RiemannState(1.0, 1.0, 1.0)
        rho, u, p = exact_riemann(left, right, np.array([0.0]), gamma=1.4)
        assert u[0] == pytest.approx(0.0, abs=1e-10)


class TestDudt:
    def test_uniform_state_is_steady(self, eos):
        mesh = make_uniform_mesh(levels=1)
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.ones((8, 8, 8)))
            leaf.subgrid.set_interior(Field.EGAS, np.full((8, 8, 8), 2.5))
            leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(np.full((8, 8, 8), 2.5)))
        fill_all_ghosts(mesh)
        for leaf in mesh.leaves():
            dudt, signal = dudt_subgrid(leaf.subgrid, leaf.dx, eos)
            assert np.abs(dudt).max() < 1e-12
            assert signal > 0

    def test_ghost_width_guard(self, eos):
        from repro.octree.subgrid import SubGrid

        sg = SubGrid(8, 1)
        with pytest.raises(ValueError):
            dudt_subgrid(sg, 0.1, eos)

    def test_primitives_velocity(self, eos):
        u = np.zeros((8, 2, 2, 2))
        u[Field.RHO] = 2.0
        u[Field.SX] = 4.0
        u[Field.EGAS] = 10.0
        w = primitives_from_conserved(u, eos)
        assert np.allclose(w["vx"], 2.0)
        assert np.allclose(w["rho"], 2.0)

    def test_primitives_floor_on_vacuum(self, eos):
        u = np.zeros((8, 2, 2, 2))
        w = primitives_from_conserved(u, eos)
        assert np.isfinite(w["vx"]).all()
        assert (w["rho"] > 0).all()


class TestTimestep:
    def test_cfl_scales_with_dx(self, eos):
        mesh = make_uniform_mesh(levels=1)
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.ones((8, 8, 8)))
            leaf.subgrid.set_interior(Field.EGAS, np.full((8, 8, 8), 2.5))
        leaf = mesh.leaves()[0]
        dt1 = cfl_timestep_subgrid(leaf.subgrid, leaf.dx, eos)
        dt2 = cfl_timestep_subgrid(leaf.subgrid, leaf.dx / 2, eos)
        assert dt1 == pytest.approx(2 * dt2)

    def test_global_timestep_is_minimum(self, eos):
        mesh = AmrMesh()
        mesh.refine((0, 0))
        mesh.refine((1, 0))  # finer leaves -> smaller dt
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.ones((8, 8, 8)))
            leaf.subgrid.set_interior(Field.EGAS, np.full((8, 8, 8), 2.5))
        dt = global_timestep(mesh, eos)
        finest = [l for l in mesh.leaves() if l.level == 2][0]
        assert dt == pytest.approx(cfl_timestep_subgrid(finest.subgrid, finest.dx, eos))

    def test_vacuum_mesh_gives_finite_dt(self, eos):
        # The density/energy floors keep the sound speed positive, so even
        # a vacuum mesh yields a finite (huge) timestep rather than inf.
        mesh = make_uniform_mesh(levels=0)
        dt = global_timestep(mesh, eos)
        assert np.isfinite(dt) and dt > 0
