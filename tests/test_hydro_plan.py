"""The batched hydro plan: bit-equivalence with the per-leaf reference,
ghost index-plan fidelity, cache invalidation, and the folded-in CFL cache.

The batched path is designed to be *bit-identical* to the reference
integrator (every optimization preserves IEEE semantics), so the
equivalence assertions here use exact array equality, not a tolerance.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.hydro import HydroIntegrator, IdealGasEOS, build_hydro_plan
from repro.hydro.timestep import global_timestep
from repro.octree import AmrMesh, Field
from repro.octree.ghost import fill_all_ghosts


def make_state_mesh(levels=1, n=8, refine_keys=(), seed=0, mach=0.0):
    """A smooth randomized state (optionally supersonic along z)."""
    rng = np.random.default_rng(seed)
    mesh = AmrMesh(n=n, ghost=2, domain_size=1.0)
    for _ in range(levels):
        for key in list(mesh.leaf_keys()):
            mesh.refine(key)
    for k in refine_keys:
        keys = sorted(mesh.leaf_keys())
        mesh.refine(keys[k % len(keys)])
    eos = IdealGasEOS()
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        rho = (
            1.0
            + 0.3 * np.sin(2 * np.pi * x) * np.cos(2 * np.pi * y)
            + 0.05 * rng.random(x.shape)
        )
        p = 1.0 + 0.2 * np.cos(2 * np.pi * z)
        eint = p / (eos.gamma - 1.0)
        vx = 0.1 * np.sin(2 * np.pi * y) + mach * np.sin(2 * np.pi * z)
        leaf.subgrid.set_interior(Field.RHO, rho)
        leaf.subgrid.set_interior(Field.SX, rho * vx)
        leaf.subgrid.set_interior(Field.EGAS, eint + 0.5 * rho * vx**2)
        leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
        leaf.subgrid.set_interior(Field.FRAC1, 0.4 * rho)
        leaf.subgrid.set_interior(Field.FRAC2, 0.6 * rho)
    mesh.restrict_all()
    return mesh, eos


def fake_gravity(mesh):
    out = {}
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        out[leaf.key] = np.stack([-0.1 * x, -0.1 * y, -0.05 * z])
    return out


def snapshot(mesh):
    return {k: nd.subgrid.data.copy() for k, nd in mesh.nodes.items()}


def assert_meshes_identical(mesh_a, mesh_b):
    assert set(mesh_a.nodes) == set(mesh_b.nodes)
    for key in mesh_a.nodes:
        a = mesh_a.nodes[key].subgrid.data
        b = mesh_b.nodes[key].subgrid.data
        assert np.array_equal(a, b), f"state diverged at node {key}"


def run_pair(steps=3, **cfg):
    """Advance a batched and a reference integrator on twin meshes."""
    mesh_kw = {
        k: cfg.pop(k) for k in ("levels", "n", "refine_keys", "mach") if k in cfg
    }
    mesh_a, eos = make_state_mesh(**mesh_kw)
    mesh_b, _ = make_state_mesh(**mesh_kw)
    a = HydroIntegrator(mesh_a, eos, batched=True, **cfg)
    b = HydroIntegrator(mesh_b, eos, batched=False, **cfg)
    for _ in range(steps):
        dt_a = a.step()
        dt_b = b.step()
        assert dt_a == dt_b
    return a, b, mesh_a, mesh_b


class TestEquivalence:
    def test_uniform_level1_bitwise(self):
        a, b, mesh_a, mesh_b = run_pair(levels=1)
        assert_meshes_identical(mesh_a, mesh_b)

    def test_adaptive_mesh_bitwise(self):
        a, b, mesh_a, mesh_b = run_pair(levels=1, refine_keys=(0, 3))
        assert_meshes_identical(mesh_a, mesh_b)
        assert a.faces_refluxed == b.faces_refluxed > 0

    def test_gravity_and_rotating_frame_bitwise(self):
        a, b, mesh_a, mesh_b = run_pair(
            levels=1,
            refine_keys=(2,),
            gravity=fake_gravity,
            gravity_every_stage=True,
            omega=0.5,
        )
        assert_meshes_identical(mesh_a, mesh_b)

    def test_constant_reconstruction_bitwise(self):
        a, b, mesh_a, mesh_b = run_pair(
            levels=1, refine_keys=(1, 5), reconstruction="constant"
        )
        assert_meshes_identical(mesh_a, mesh_b)

    def test_supersonic_bitwise(self):
        # Mach 4 along z: supersonic faces make the HLL upwind selects
        # (s_left >= 0 / s_right <= 0) actually fire in the batched path.
        a, b, mesh_a, mesh_b = run_pair(levels=1, refine_keys=(4,), mach=4.0)
        assert_meshes_identical(mesh_a, mesh_b)

    def test_small_subgrids_bitwise(self):
        a, b, mesh_a, mesh_b = run_pair(levels=1, n=4, refine_keys=(0,))
        assert_meshes_identical(mesh_a, mesh_b)


class TestGhostIndexPlan:
    def test_vectorized_fill_matches_reference(self):
        mesh_a, _ = make_state_mesh(levels=1, refine_keys=(0, 3))
        mesh_b, _ = make_state_mesh(levels=1, refine_keys=(0, 3))
        plan = build_hydro_plan(mesh_a)
        # Scribble over every ghost band so stale values cannot pass.
        for mesh in (mesh_a, mesh_b):
            g, n = mesh.ghost, mesh.n
            for leaf in mesh.leaves():
                data = leaf.subgrid.data
                interior = data[:, g : g + n, g : g + n, g : g + n].copy()
                data[:] = -99.0
                data[:, g : g + n, g : g + n, g : g + n] = interior
        plan.ghosts.fill_ghosts_kernel(plan.arena)
        fill_all_ghosts(mesh_b)
        assert_meshes_identical(mesh_a, mesh_b)

    def test_face_counts_cover_every_face(self):
        mesh, _ = make_state_mesh(levels=1, refine_keys=(2,))
        plan = build_hydro_plan(mesh)
        total = sum(plan.ghosts.face_counts.values())
        assert total == 6 * len(mesh.leaves())
        assert plan.ghosts.face_counts["fine"] > 0
        assert plan.ghosts.face_counts["coarse"] > 0


class TestPlanCache:
    def test_plan_reused_across_steps(self):
        mesh, eos = make_state_mesh(levels=1)
        integ = HydroIntegrator(mesh, eos)
        integ.step(1e-4)
        plan = integ.plan_for()
        integ.step(1e-4)
        assert integ.plan_for() is plan

    def test_plan_invalidated_by_refine(self):
        mesh, eos = make_state_mesh(levels=1)
        integ = HydroIntegrator(mesh, eos)
        integ.step(1e-4)
        plan = integ.plan_for()
        mesh.refine(sorted(mesh.leaf_keys())[0])
        assert not plan.matches(mesh)
        integ.step(1e-4)
        assert integ.plan_for() is not plan

    def test_plan_invalidated_by_derefine(self):
        mesh, eos = make_state_mesh(levels=1, refine_keys=(0,))
        integ = HydroIntegrator(mesh, eos)
        integ.step(1e-4)
        plan = integ.plan_for()
        parents = [
            key
            for key, node in sorted(mesh.nodes.items())
            if not node.is_leaf
            and all(mesh.nodes[k].is_leaf for k in node.children_keys())
        ]
        mesh.derefine(parents[-1])
        assert not plan.matches(mesh)

    def test_plan_invalidated_by_readoption(self):
        # A second plan adopting the same mesh rebinds leaf storage away
        # from the first plan's arena: the view-identity check must fail.
        mesh, eos = make_state_mesh(levels=1)
        plan_a = build_hydro_plan(mesh)
        assert plan_a.matches(mesh)
        build_hydro_plan(mesh)
        assert not plan_a.matches(mesh)

    def test_adoption_preserves_field_values(self):
        mesh, _ = make_state_mesh(levels=1, refine_keys=(3,))
        before = snapshot(mesh)
        plan = build_hydro_plan(mesh)
        for key, data in before.items():
            assert np.array_equal(mesh.nodes[key].subgrid.data, data)
        # Leaf views alias the arena: writes through either side are shared.
        leaf = mesh.leaves()[0]
        leaf.subgrid.data[Field.RHO] += 1.0
        slot = plan.slot[leaf.key]
        assert plan.views[slot] is leaf.subgrid.data

    def test_invalidate_plan_forces_rebuild(self):
        mesh, eos = make_state_mesh(levels=1)
        integ = HydroIntegrator(mesh, eos)
        integ.step(1e-4)
        plan = integ.plan_for()
        integ.invalidate_plan()
        integ.step(1e-4)
        assert integ.plan_for() is not plan


class TestCflSignalCache:
    def test_cached_dt_equals_recomputed(self):
        mesh, eos = make_state_mesh(levels=1, refine_keys=(1,))
        integ = HydroIntegrator(mesh, eos)
        integ.step()
        cached = integ.timestep()
        recomputed = global_timestep(mesh, eos, integ.cfl)
        assert cached == recomputed

    def test_cache_dropped_on_regrid(self):
        mesh, eos = make_state_mesh(levels=1)
        integ = HydroIntegrator(mesh, eos)
        integ.step()
        mesh.refine(sorted(mesh.leaf_keys())[0])
        assert integ.timestep() == global_timestep(mesh, eos, integ.cfl)


class TestRefluxSkip:
    def test_uniform_meshes_skip_flux_collection(self):
        # Satellite: nothing to reflux on uniform meshes.  The batched path
        # skips the boundary-flux copies whenever the plan has no fine
        # faces (any uniform mesh); the reference skips on a single-root
        # mesh (max_level() == 0).  Both must count zero refluxed faces.
        for levels in (0, 1):
            for batched in (True, False):
                mesh, eos = make_state_mesh(levels=levels)
                integ = HydroIntegrator(mesh, eos, batched=batched)
                integ.step(1e-4)
                assert integ.faces_refluxed == 0

    def test_single_root_mesh_bitwise(self):
        a, b, mesh_a, mesh_b = run_pair(levels=0)
        assert_meshes_identical(mesh_a, mesh_b)

    def test_refined_mesh_refluxes(self):
        mesh, eos = make_state_mesh(levels=1, refine_keys=(0,))
        integ = HydroIntegrator(mesh, eos)
        integ.step(1e-4)
        assert integ.faces_refluxed > 0


class TestProfilingCounters:
    def test_phase_timers_recorded(self):
        from repro.profiling.apex import CounterRegistry

        mesh, eos = make_state_mesh(levels=1)
        integ = HydroIntegrator(mesh, eos)
        integ.registry = CounterRegistry()
        integ.step(1e-4)
        for name in (
            "hydro.plan",
            "hydro.ghost",
            "hydro.reconstruct",
            "hydro.riemann",
            "hydro.update",
        ):
            assert integ.registry.count(name) >= 1, name
        assert integ.registry.total("hydro.plan_builds") == 1
        integ.step(1e-4)
        assert integ.registry.total("hydro.plan_builds") == 1  # plan reused


@st.composite
def _mutation_sequences(draw):
    return draw(
        st.lists(
            st.tuples(st.sampled_from(["refine", "derefine"]), st.integers(0, 63)),
            min_size=1,
            max_size=4,
        )
    )


def _apply_mutation(mesh, op, pick):
    """Resolve one (op, pick) against the live mesh; deterministic, so twin
    meshes stay structurally identical."""
    if op == "refine":
        candidates = sorted(k for k in mesh.leaf_keys() if k[0] < 3)
        if not candidates:
            return False
        mesh.refine(candidates[pick % len(candidates)])
        return True
    candidates = []
    for key, node in sorted(mesh.nodes.items()):
        if node.is_leaf:
            continue
        if all(mesh.nodes[k].is_leaf for k in node.children_keys()):
            candidates.append(key)
    if not candidates:
        return False
    try:
        mesh.derefine(candidates[pick % len(candidates)])
    except ValueError:
        return False  # would break 2:1 balance
    return True


class TestBatchedInvalidationProperty:
    @given(
        ops=_mutation_sequences(),
        reconstruction=st.sampled_from(["muscl", "constant"]),
        with_sources=st.booleans(),
    )
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_reused_integrator_tracks_topology_changes(
        self, ops, reconstruction, with_sources
    ):
        """A batched integrator reused across arbitrary refine/derefine
        sequences stays bit-identical to the reference at every
        intermediate topology."""
        kw = dict(reconstruction=reconstruction)
        if with_sources:
            kw.update(gravity=fake_gravity, omega=0.3)
        mesh_a, eos = make_state_mesh(levels=1, n=4)
        mesh_b, _ = make_state_mesh(levels=1, n=4)
        a = HydroIntegrator(mesh_a, eos, batched=True, **kw)
        b = HydroIntegrator(mesh_b, eos, batched=False, **kw)
        a.step()
        b.step()
        for op, pick in ops:
            changed = _apply_mutation(mesh_a, op, pick)
            assert _apply_mutation(mesh_b, op, pick) == changed
            dt_a = a.step()
            dt_b = b.step()
            assert dt_a == dt_b
            assert_meshes_identical(mesh_a, mesh_b)
