"""Command-line interface."""

import pytest

from repro.cli import main


class TestInfoCommands:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in ("Fugaku", "Ookami", "Summit", "Piz Daint", "Perlmutter"):
            assert name in out

    def test_manifest(self, capsys):
        assert main(["manifest"]) == 0
        out = capsys.readouterr().out
        assert "hpx" in out and "kokkos" in out


class TestScale:
    def test_scale_rotating_star(self, capsys):
        code = main(
            ["scale", "--scenario", "rotating_star", "--level", "5",
             "--machine", "Fugaku", "--nodes", "1", "4", "16"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cells/s" in out
        assert out.count("\n") >= 5

    def test_scale_with_gpus(self, capsys):
        code = main(
            ["scale", "--scenario", "dwd", "--level", "12",
             "--machine", "Perlmutter", "--nodes", "1", "8", "--gpus"]
        )
        assert code == 0

    def test_scale_flags(self, capsys):
        code = main(
            ["scale", "--level", "5", "--machine", "Ookami",
             "--nodes", "64", "--no-simd", "--multipole-tasks", "16"]
        )
        assert code == 0

    def test_unknown_machine_raises(self):
        with pytest.raises(KeyError):
            main(["scale", "--machine", "Frontier", "--nodes", "1"])


@pytest.mark.slow
class TestRun:
    def test_run_and_checkpoint(self, capsys, tmp_path):
        chk = tmp_path / "state"
        code = main(
            ["run", "--scenario", "rotating_star", "--level", "2",
             "--steps", "1", "--nodes", "2", "--checkpoint", str(chk)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mass drift" in out
        assert (tmp_path / "state.npz").exists()
        from repro.ioutil import load_checkpoint

        mesh, meta = load_checkpoint(tmp_path / "state.npz")
        assert meta["step"] == 1
