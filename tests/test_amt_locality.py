"""Localities, remote actions, channels, runtime utilities."""

import pytest

from repro.amt.locality import ActionRegistry, Channel, Runtime


class TestRuntimeBasics:
    def test_construction(self):
        rt = Runtime(n_localities=3, workers_per_locality=2)
        assert rt.n_localities == 3
        assert rt.here() is rt.localities[0]

    def test_invalid_locality_count(self):
        with pytest.raises(ValueError):
            Runtime(n_localities=0)

    def test_async_on_locality(self):
        rt = Runtime(2, 2)
        future = rt.localities[1].async_(lambda: 11, cost=1.0)
        assert rt.run_until_ready(future) == 11

    def test_async_after_dataflow(self):
        rt = Runtime(1, 2)
        loc = rt.here()
        a = loc.async_(lambda: 1, cost=1.0)
        b = loc.async_(lambda: 2, cost=1.0)
        c = loc.async_after([a, b], lambda: 3, cost=1.0)
        assert rt.run_until_ready(c) == 3
        assert rt.engine.now == pytest.approx(2.0)

    def test_run_until_ready_deadlock_detection(self):
        from repro.amt.future import Future

        rt = Runtime(1, 1)
        orphan = Future()
        with pytest.raises(RuntimeError, match="deadlock"):
            rt.run_until_ready(orphan)

    def test_utilization_bounds(self):
        rt = Runtime(2, 2)
        rt.here().async_(None, cost=1.0)
        rt.run()
        assert 0.0 < rt.utilization() <= 1.0


class TestActions:
    def test_registry_lookup(self):
        reg = ActionRegistry()
        reg.register("f", lambda: 1)
        assert "f" in reg
        assert reg.lookup("f")() == 1

    def test_duplicate_registration(self):
        reg = ActionRegistry()
        reg.register("f", lambda: 1)
        with pytest.raises(ValueError):
            reg.register("f", lambda: 2)

    def test_unknown_action(self):
        with pytest.raises(KeyError):
            ActionRegistry().lookup("ghost")

    def test_remote_invocation(self):
        rt = Runtime(2, 2)
        rt.actions.register("add", lambda a, b: a + b)
        future = rt.apply_remote(0, 1, "add", 20, 22, cost=1e-6)
        assert rt.run_until_ready(future) == 42

    def test_remote_takes_network_time(self):
        rt = Runtime(2, 1)
        rt.actions.register("noop", lambda: None)
        future = rt.apply_remote(0, 1, "noop", size_bytes=1_000_000)
        rt.run_until_ready(future)
        # Request + reply both cross the wire: at least two latencies.
        assert rt.engine.now >= 2 * rt.network.latency_s

    def test_local_invocation_cheaper_than_remote(self):
        rt1 = Runtime(2, 1)
        rt1.actions.register("noop", lambda: None)
        rt1.run_until_ready(rt1.apply_remote(0, 0, "noop"))
        local_time = rt1.engine.now

        rt2 = Runtime(2, 1)
        rt2.actions.register("noop", lambda: None)
        rt2.run_until_ready(rt2.apply_remote(0, 1, "noop"))
        assert local_time < rt2.engine.now

    def test_remote_exception_propagates(self):
        rt = Runtime(2, 1)

        def bad():
            raise ValueError("remote boom")

        rt.actions.register("bad", bad)
        future = rt.apply_remote(0, 1, "bad")
        with pytest.raises(ValueError, match="remote boom"):
            rt.run_until_ready(future)


class TestChannel:
    def test_set_then_get(self):
        ch = Channel()
        ch.set("payload", generation=0)
        assert ch.get(0).get() == "payload"

    def test_get_then_set(self):
        ch = Channel()
        future = ch.get(3)
        assert not future.is_ready()
        ch.set("late", generation=3)
        assert future.get() == "late"

    def test_generations_independent(self):
        ch = Channel()
        ch.set("a", 0)
        ch.set("b", 1)
        assert ch.get(1).get() == "b"
        assert ch.get(0).get() == "a"

    def test_double_set_rejected(self):
        ch = Channel()
        ch.set(1, 0)
        with pytest.raises(ValueError):
            ch.set(2, 0)

    def test_double_get_rejected(self):
        ch = Channel()
        ch.set(1, 0)
        ch.get(0)
        with pytest.raises(ValueError):
            ch.get(0)
