"""Performance model: the paper's qualitative results as assertions.

Every figure's *shape* claim is a test here; the benches print the full
series, but these assertions are what pin the model against the paper.
"""

import pytest

from repro.distsim import (
    DEFAULT_CONSTANTS,
    RunConfig,
    scaling_curve,
    simulate_step,
    speedup_series,
)
from repro.distsim.sweep import min_nodes_for, node_series
from repro.machines import FUGAKU, OOKAMI, PERLMUTTER, PIZ_DAINT, SUMMIT
from repro.scenarios import dwd_scenario, rotating_star, v1309_scenario


@pytest.fixture(scope="module")
def level5():
    return rotating_star(level=5, build_mesh=False).spec


@pytest.fixture(scope="module")
def level6():
    return rotating_star(level=6, build_mesh=False).spec


@pytest.fixture(scope="module")
def level7():
    return rotating_star(level=7, build_mesh=False).spec


class TestRunConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RunConfig(machine=FUGAKU, nodes=0)
        with pytest.raises(ValueError):
            RunConfig(machine=FUGAKU, use_gpus=True)
        with pytest.raises(ValueError):
            RunConfig(machine=OOKAMI, boost=True)  # FX700 has no boost mode
        with pytest.raises(ValueError):
            RunConfig(machine=FUGAKU, tasks_per_multipole_kernel=0)
        with pytest.raises(ValueError):
            RunConfig(machine=FUGAKU, cores=100)
        with pytest.raises(ValueError):
            RunConfig(machine=FUGAKU, simd_maturity=1.5)

    def test_frequency_selection(self):
        assert RunConfig(machine=FUGAKU).frequency_ghz == 1.8
        assert RunConfig(machine=FUGAKU, boost=True).frequency_ghz == 2.2

    def test_active_cores_default(self):
        assert RunConfig(machine=FUGAKU).active_cores == 48
        assert RunConfig(machine=FUGAKU, cores=12).active_cores == 12


class TestFig3BoostMode:
    def test_boost_gain_is_marginal(self, level5):
        """Paper SVI-A: boost mode gives only a marginal improvement."""
        normal = simulate_step(level5, RunConfig(machine=FUGAKU, nodes=1))
        boost = simulate_step(level5, RunConfig(machine=FUGAKU, nodes=1, boost=True))
        gain = boost.cells_per_second / normal.cells_per_second - 1.0
        assert 0.0 < gain < 0.22  # below the raw 2.2/1.8 clock ratio

    def test_node_level_core_scaling(self, level5):
        rates = [
            simulate_step(level5, RunConfig(machine=FUGAKU, nodes=1, cores=c)).cells_per_second
            for c in (1, 12, 24, 48)
        ]
        assert rates == sorted(rates)
        # Sub-linear but reasonable: 48 cores give at least 30x one core.
        assert rates[-1] / rates[0] > 30


class TestFig4V1309:
    def test_machine_ordering(self):
        """Summit fastest per node, Piz Daint second, Fugaku close behind."""
        spec = v1309_scenario(level=11, build_mesh=False).spec
        summit = simulate_step(spec, RunConfig(machine=SUMMIT, nodes=16, use_gpus=True))
        daint = simulate_step(spec, RunConfig(machine=PIZ_DAINT, nodes=16, use_gpus=True))
        fugaku = simulate_step(spec, RunConfig(machine=FUGAKU, nodes=16, simd=True))
        assert summit.cells_per_second > daint.cells_per_second > fugaku.cells_per_second
        # "Close": same order of magnitude.
        assert daint.cells_per_second / fugaku.cells_per_second < 10.0

    def test_minimum_node_counts_ordering(self):
        """Memory capacity sets the entry points: Summit < Piz Daint < Fugaku."""
        spec = v1309_scenario(level=11, build_mesh=False).spec
        assert min_nodes_for(spec, SUMMIT) == 1
        assert min_nodes_for(spec, SUMMIT) < min_nodes_for(spec, PIZ_DAINT)
        assert min_nodes_for(spec, PIZ_DAINT) <= min_nodes_for(spec, FUGAKU)

    def test_speedup_series_normalised(self):
        spec = v1309_scenario(level=11, build_mesh=False).spec
        curve = scaling_curve(spec, FUGAKU, node_series(16, 128))
        s = speedup_series(curve)
        assert s[0] == pytest.approx(1.0)
        assert all(b > a for a, b in zip(s, s[1:]))


class TestFig5Dwd:
    def test_gpu_two_orders_above_cpu(self):
        spec = dwd_scenario(level=12, build_mesh=False).spec
        gpu = simulate_step(spec, RunConfig(machine=PERLMUTTER, nodes=1, use_gpus=True))
        cpu = simulate_step(spec, RunConfig(machine=PERLMUTTER, nodes=1, simd=False))
        ratio = gpu.cells_per_second / cpu.cells_per_second
        assert 40.0 < ratio < 300.0  # "a drop of two orders of magnitude"

    def test_fugaku_close_below_perlmutter_cpu(self):
        spec = dwd_scenario(level=12, build_mesh=False).spec
        cpu = simulate_step(spec, RunConfig(machine=PERLMUTTER, nodes=1, simd=False))
        fugaku = simulate_step(spec, RunConfig(machine=FUGAKU, nodes=1, simd=False))
        ratio = fugaku.cells_per_second / cpu.cells_per_second
        assert 0.4 < ratio < 1.0


class TestFig6FugakuScaling:
    @staticmethod
    def efficiency(curve):
        base = curve[0]
        out = []
        for point in curve:
            ideal = base.cells_per_second * point.nodes / base.nodes
            out.append(point.cells_per_second / ideal)
        return out

    def test_level5_stops_scaling_beyond_64(self, level5):
        curve = scaling_curve(level5, FUGAKU, node_series(1, 256))
        eff = self.efficiency(curve)
        by_nodes = {c.nodes: e for c, e in zip(curve, eff)}
        assert by_nodes[64] > 0.45  # still delivering speedup at 64
        assert by_nodes[256] < 0.35  # ran out of work per core
        assert by_nodes[256] < by_nodes[64] < by_nodes[16]

    def test_level6_scales_to_512(self, level6):
        curve = scaling_curve(level6, FUGAKU, node_series(128, 1024))
        by_nodes = {c.nodes: c.cells_per_second for c in curve}
        assert by_nodes[512] / by_nodes[128] > 2.0  # 4x nodes -> > 2x rate
        assert by_nodes[1024] / by_nodes[512] < 1.5  # knee past 512

    def test_level7_scales_to_1024(self, level7):
        curve = scaling_curve(level7, FUGAKU, [400, 512, 1024])
        assert curve[-1].cells_per_second / curve[0].cells_per_second > 1.8

    def test_more_cells_more_throughput_at_fixed_nodes(self, level5, level6, level7):
        rates = [
            simulate_step(spec, RunConfig(machine=FUGAKU, nodes=1024)).cells_per_second
            for spec in (level5, level6, level7)
        ]
        assert rates == sorted(rates)


class TestTable2Power:
    def test_total_power_tracks_nodes(self, level5):
        p128 = simulate_step(level5, RunConfig(machine=FUGAKU, nodes=128)).job_power_w
        p1024 = simulate_step(level5, RunConfig(machine=FUGAKU, nodes=1024)).job_power_w
        assert 4.0 < p1024 / p128 < 9.0  # sub-linear: starving nodes idle down

    def test_1024_node_power_matches_paper_scale(self, level5):
        """Paper Table II: ~111 kW at 1024 nodes for the rotating star."""
        result = simulate_step(level5, RunConfig(machine=FUGAKU, nodes=1024))
        assert 70_000 < result.job_power_w < 150_000

    def test_per_node_power_in_a64fx_envelope(self, level5):
        for nodes in (4, 64, 1024):
            result = simulate_step(level5, RunConfig(machine=FUGAKU, nodes=nodes))
            assert 35.0 <= result.node_power_w <= 115.0


class TestFig7Sve:
    def test_sve_speedup_two_to_three(self, level5):
        """Fig. 7 / SVII-A: SVE gives ~2-3x across node counts."""
        for nodes in (1, 8, 64, 128):
            sve = simulate_step(level5, RunConfig(machine=OOKAMI, nodes=nodes, simd=True))
            scalar = simulate_step(level5, RunConfig(machine=OOKAMI, nodes=nodes, simd=False))
            ratio = sve.cells_per_second / scalar.cells_per_second
            assert 1.8 < ratio < 3.0, (nodes, ratio)

    def test_simd_maturity_degrades(self, level5):
        mature = simulate_step(level5, RunConfig(machine=FUGAKU, nodes=4, simd_maturity=1.0))
        older = simulate_step(level5, RunConfig(machine=FUGAKU, nodes=4, simd_maturity=0.7))
        assert older.cells_per_second < mature.cells_per_second


class TestFig8CommOptimization:
    def test_benefit_at_small_node_counts(self, level5):
        for nodes in (1, 2):
            on = simulate_step(level5, RunConfig(machine=OOKAMI, nodes=nodes))
            off = simulate_step(
                level5, RunConfig(machine=OOKAMI, nodes=nodes, comm_local_optimization=False)
            )
            assert on.cells_per_second > off.cells_per_second, nodes

    def test_break_even_then_slightly_worse(self, level5):
        """Break-even around 8 nodes; slightly worse beyond (Fig. 8)."""
        at8 = [
            simulate_step(
                level5,
                RunConfig(machine=OOKAMI, nodes=8, comm_local_optimization=flag),
            ).cells_per_second
            for flag in (True, False)
        ]
        assert at8[0] / at8[1] == pytest.approx(1.0, abs=0.05)
        at128 = [
            simulate_step(
                level5,
                RunConfig(machine=OOKAMI, nodes=128, comm_local_optimization=flag),
            ).cells_per_second
            for flag in (True, False)
        ]
        assert 0.85 < at128[0] / at128[1] < 1.0


class TestFig9MultipoleSplitting:
    def test_single_node_prefers_one_task(self, level5):
        one = simulate_step(level5, RunConfig(machine=OOKAMI, nodes=1, tasks_per_multipole_kernel=1))
        sixteen = simulate_step(level5, RunConfig(machine=OOKAMI, nodes=1, tasks_per_multipole_kernel=16))
        assert sixteen.cells_per_second <= one.cells_per_second

    def test_128_nodes_prefer_sixteen_tasks(self, level5):
        one = simulate_step(level5, RunConfig(machine=OOKAMI, nodes=128, tasks_per_multipole_kernel=1))
        sixteen = simulate_step(level5, RunConfig(machine=OOKAMI, nodes=128, tasks_per_multipole_kernel=16))
        assert sixteen.cells_per_second / one.cells_per_second > 1.1

    def test_multipole_time_floor_without_splitting(self, level5):
        """Starvation: the multipole phase stops shrinking with node count."""
        t64 = simulate_step(level5, RunConfig(machine=FUGAKU, nodes=64)).multipole_s
        t1024 = simulate_step(level5, RunConfig(machine=FUGAKU, nodes=1024)).multipole_s
        assert t1024 > 0.5 * t64  # nowhere near ideal 16x reduction


class TestFig10OokamiVsFugaku:
    def test_crossover(self, level5):
        """Fully optimized Ookami overtakes Fugaku (older SVE, no multipole
        split) at scale; they are comparable at small node counts."""
        for nodes, expect_ookami_ahead in ((1, False), (8, False), (128, True)):
            ookami = simulate_step(
                level5,
                RunConfig(machine=OOKAMI, nodes=nodes, tasks_per_multipole_kernel=16),
            )
            fugaku = simulate_step(
                level5,
                RunConfig(machine=FUGAKU, nodes=nodes, simd_maturity=0.7),
            )
            ratio = ookami.cells_per_second / fugaku.cells_per_second
            if expect_ookami_ahead:
                assert ratio > 1.15, (nodes, ratio)
            else:
                assert 0.8 < ratio < 1.25, (nodes, ratio)


class TestModelInternals:
    def test_breakdown_sums(self, level5):
        r = simulate_step(level5, RunConfig(machine=FUGAKU, nodes=16))
        assert r.total_s >= r.hydro_s + r.gravity_s + r.multipole_s
        assert 0 < r.utilization <= 1.0
        assert r.subgrids_per_second == pytest.approx(r.cells_per_second / 512)

    def test_single_node_has_no_wire_or_sync(self, level5):
        r = simulate_step(level5, RunConfig(machine=FUGAKU, nodes=1))
        assert r.sync_s == 0.0
        assert r.exposed_comm_s == 0.0

    def test_gpu_config_uses_device_rate(self):
        spec = dwd_scenario(level=12, build_mesh=False).spec
        gpu = simulate_step(spec, RunConfig(machine=SUMMIT, nodes=4, use_gpus=True))
        cpu = simulate_step(spec, RunConfig(machine=SUMMIT, nodes=4, use_gpus=False))
        assert gpu.cells_per_second > cpu.cells_per_second

    def test_constants_are_documented_defaults(self):
        assert DEFAULT_CONSTANTS.overlap_fraction == 0.7
        assert DEFAULT_CONSTANTS.face_action_cpu_s > DEFAULT_CONSTANTS.face_sync_cpu_s
