"""Integrator-level validation: conservation, Sod shock tube, sources."""

import numpy as np
import pytest

from repro.hydro import HydroIntegrator, IdealGasEOS, sod_solution
from repro.hydro.sources import gravity_source, rotating_frame_source
from repro.octree import AmrMesh, Field

from tests.conftest import make_uniform_mesh


def sod_mesh(levels=2, gamma=1.4):
    eos = IdealGasEOS(gamma=gamma)
    mesh = AmrMesh(n=8, ghost=2, domain_size=1.0)
    for _ in range(levels):
        for key in list(mesh.leaf_keys()):
            mesh.refine(key)
    for leaf in mesh.leaves():
        x, _, _ = leaf.cell_centers()
        rho = np.where(x < 0, 1.0, 0.125)
        p = np.where(x < 0, 1.0, 0.1)
        eint = p / (gamma - 1.0)
        leaf.subgrid.set_interior(Field.RHO, rho)
        leaf.subgrid.set_interior(Field.EGAS, eint)
        leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
    mesh.restrict_all()
    return mesh, eos


class TestSources:
    def test_gravity_momentum_and_work(self):
        u = np.zeros((8, 2, 2, 2))
        u[Field.RHO] = 2.0
        u[Field.SX] = 1.0
        g = np.zeros((3, 2, 2, 2))
        g[0] = 3.0
        src = gravity_source(u, g)
        assert np.allclose(src[Field.SX], 6.0)  # rho * g
        assert np.allclose(src[Field.EGAS], 3.0)  # s . g
        assert np.allclose(src[Field.RHO], 0.0)

    def test_coriolis_does_no_work(self):
        u = np.zeros((8, 2, 2, 2))
        u[Field.RHO] = 1.0
        u[Field.SX] = 0.7
        u[Field.SY] = -0.2
        x = np.zeros((2, 2, 2))  # at the rotation axis: no centrifugal term
        y = np.zeros((2, 2, 2))
        src = rotating_frame_source(u, omega=2.0, x=x, y=y)
        assert np.allclose(src[Field.EGAS], 0.0)
        # Coriolis: ds_x = +2 w s_y, ds_y = -2 w s_x.
        assert np.allclose(src[Field.SX], 2 * 2.0 * (-0.2))
        assert np.allclose(src[Field.SY], -2 * 2.0 * 0.7)

    def test_centrifugal_work(self):
        u = np.zeros((8, 1, 1, 1))
        u[Field.RHO] = 1.0
        u[Field.SX] = 1.0
        x = np.full((1, 1, 1), 2.0)
        y = np.zeros((1, 1, 1))
        src = rotating_frame_source(u, omega=1.0, x=x, y=y)
        assert src[Field.EGAS][0, 0, 0] == pytest.approx(1.0 * 1.0 * 2.0)

    def test_zero_omega_no_source(self):
        u = np.random.default_rng(0).random((8, 2, 2, 2))
        src = rotating_frame_source(u, 0.0, np.ones((2, 2, 2)), np.ones((2, 2, 2)))
        assert (src == 0).all()


class TestConservation:
    def test_machine_precision_on_uniform_mesh(self):
        mesh, eos = sod_mesh(levels=2)
        integ = HydroIntegrator(mesh, eos)
        m0 = mesh.integral(Field.RHO)
        e0 = mesh.integral(Field.EGAS)
        s0 = mesh.integral(Field.SX)
        for _ in range(5):
            integ.step()
        # Nothing has reached the domain boundary yet: mass and energy are
        # conserved to machine precision.
        assert mesh.integral(Field.RHO) == pytest.approx(m0, rel=1e-12)
        assert mesh.integral(Field.EGAS) == pytest.approx(e0, rel=1e-12)
        # x momentum changes by exactly the boundary pressure integral
        # (p_left - p_right) * area * t — the physically correct budget.
        expected = (1.0 - 0.1) * 1.0 * integ.time
        assert mesh.integral(Field.SX) - s0 == pytest.approx(expected, rel=1e-10)

    def test_uniform_state_stays_uniform(self):
        eos = IdealGasEOS()
        mesh = make_uniform_mesh(levels=1)
        for leaf in mesh.leaves():
            leaf.subgrid.set_interior(Field.RHO, np.ones((8, 8, 8)))
            leaf.subgrid.set_interior(Field.EGAS, np.full((8, 8, 8), 2.5))
            leaf.subgrid.set_interior(
                Field.TAU, eos.tau_from_eint(np.full((8, 8, 8), 2.5))
            )
        integ = HydroIntegrator(mesh, eos)
        integ.step()
        for leaf in mesh.leaves():
            assert np.allclose(leaf.subgrid.interior_view(Field.RHO), 1.0, atol=1e-13)

    def test_tracers_advect_conservatively(self):
        mesh, eos = sod_mesh(levels=2)
        for leaf in mesh.leaves():
            x, _, _ = leaf.cell_centers()
            rho = leaf.subgrid.interior_view(Field.RHO)
            leaf.subgrid.set_interior(Field.FRAC1, np.where(x < 0, rho, 0.0))
        f0 = mesh.integral(Field.FRAC1)
        integ = HydroIntegrator(mesh, eos)
        integ.run(0.05)
        assert mesh.integral(Field.FRAC1) == pytest.approx(f0, rel=1e-11)


class TestSodShockTube:
    @pytest.mark.slow
    def test_density_profile_matches_exact(self):
        mesh, eos = sod_mesh(levels=2)
        integ = HydroIntegrator(mesh, eos, cfl=0.4)
        integ.run(0.1)
        xs, rhos = [], []
        for leaf in mesh.leaves():
            x, _, _ = leaf.cell_centers()
            o = leaf.origin
            if abs(o[1] + 0.5) < 1e-9 and abs(o[2] + 0.5) < 1e-9:
                xs.extend(x[:, 0, 0])
                rhos.extend(leaf.subgrid.interior_view(Field.RHO)[:, 0, 0])
        xs, rhos = np.array(xs), np.array(rhos)
        order = np.argsort(xs)
        xs, rhos = xs[order], rhos[order]
        exact_rho, _, _ = sod_solution(xs, integ.time, x0=0.0)
        assert np.abs(rhos - exact_rho).mean() < 0.02

    def test_run_respects_t_end(self):
        mesh, eos = sod_mesh(levels=1)
        integ = HydroIntegrator(mesh, eos)
        integ.run(0.02)
        assert integ.time == pytest.approx(0.02)

    def test_dt_override(self):
        mesh, eos = sod_mesh(levels=1)
        integ = HydroIntegrator(mesh, eos)
        integ.step(dt=1e-4)
        assert integ.last_dt == 1e-4
        assert integ.steps_taken == 1
