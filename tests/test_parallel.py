"""The process backend: real OS parallelism with the DES engine as oracle.

Covers the ISSUE-6 satellite contracts:

* typed construction validation on :class:`ParallelEngine` (the
  ``Engine.post`` NaN-guard posture applied to timeouts and nprocs);
* the shm lifecycle guard — a worker crash (the ``FaultSpec`` crash fate
  made real) leaves no ``/dev/shm`` segment behind;
* backend equivalence — blast and DWD smoke runs parametrized over
  backends with bit-identical conserved sums and final fields, plus a
  hypothesis refine/derefine sweep proving plan invalidation propagates
  to the worker pool;
* per-worker ``hydro.*``/``fmm.*`` timers aggregated (max + mean) into
  the driver's counter registry.
"""

import math
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.amt.parallel import (
    ParallelEngine,
    WorkerCrashError,
    WorkerError,
)
from repro.amt.shm import ShmArena, live_segments
from repro.core.crosscheck import (
    clone_mesh,
    conserved_sums,
    crosscheck_hydro,
)
from repro.hydro import HydroIntegrator
from repro.hydro.process_backend import ProcessHydroExecutor
from repro.profiling.apex import CounterRegistry
from tests.test_hydro_plan import (
    _apply_mutation,
    _mutation_sequences,
    assert_meshes_identical,
    fake_gravity,
    make_state_mesh,
)

pytestmark = pytest.mark.timeout(300)


def _echo_factory(rank, registry):
    def handler(command):
        if command == "boom":
            raise RuntimeError("boom from worker")
        if command == "rank":
            return rank
        if command == "time":
            with registry.timer("worker.phase"):
                pass
            return None
        return command

    return handler


class TestEngineValidation:
    """Satellite 1: typed rejection, mirroring Engine.post's NaN guard."""

    def test_non_integral_nprocs_typeerror(self):
        with pytest.raises(TypeError, match="nprocs"):
            ParallelEngine(2.0)
        with pytest.raises(TypeError, match="nprocs"):
            ParallelEngine(True)

    def test_negative_nprocs_valueerror(self):
        with pytest.raises(ValueError, match="nprocs"):
            ParallelEngine(-1)
        with pytest.raises(ValueError, match="nprocs"):
            ParallelEngine(0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_timeout_valueerror(self, bad):
        with pytest.raises(ValueError, match="non-finite timeout"):
            ParallelEngine(1, timeout=bad)

    def test_non_positive_timeout_valueerror(self):
        with pytest.raises(ValueError, match="timeout"):
            ParallelEngine(1, timeout=0.0)

    def test_non_real_timeout_typeerror(self):
        with pytest.raises(TypeError, match="timeout"):
            ParallelEngine(1, timeout="soon")


class TestEngineRounds:
    def test_round_trip_and_worker_identity(self):
        with ParallelEngine(3) as engine:
            engine.start(_echo_factory)
            assert engine.round("rank") == [0, 1, 2]
            assert engine.round({"x": 1}) == [{"x": 1}] * 3

    def test_worker_exception_carries_remote_traceback(self):
        with ParallelEngine(2) as engine:
            engine.start(_echo_factory)
            with pytest.raises(WorkerError, match="boom from worker") as exc:
                engine.round("boom")
            assert "RuntimeError" in exc.value.remote_traceback
            # The pool survives a handler exception.
            assert engine.round("rank") == [0, 1]

    def test_crash_fate_raises_typed_crash_error(self):
        from repro.resilience.protocol import UnrecoverableFault

        with ParallelEngine(2) as engine:
            engine.start(_echo_factory)
            engine.crash(1)
            with pytest.raises(WorkerCrashError) as exc:
                engine.round("rank")
            assert exc.value.ranks == (1,)
            assert isinstance(exc.value, UnrecoverableFault)

    def test_harvest_timers_max_and_mean(self):
        registry = CounterRegistry()
        with ParallelEngine(2) as engine:
            engine.start(_echo_factory)
            engine.round("time")
            maxima = engine.harvest_timers(registry)
        assert "worker.phase" in maxima
        assert registry.count("worker.phase") == 1
        assert registry.count("worker.phase.workers_mean") == 1
        mean = registry.get("worker.phase.workers_mean").total
        assert mean <= maxima["worker.phase"]


class TestShmLifecycle:
    """Satellite 2: /dev/shm segments cannot leak."""

    def test_context_manager_unlinks(self):
        with ShmArena(1024) as arena:
            name = arena.name
            assert name in live_segments()
            view = arena.ndarray((128,))
            view[:] = 7.0
            assert view.sum() == 7.0 * 128
        assert name not in live_segments()
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_unlink_idempotent(self):
        arena = ShmArena(64)
        assert arena.unlink() is True
        assert arena.unlink() is False

    def test_double_close_idempotent(self):
        """close() unmaps once and is a no-op afterwards; the segment
        itself survives until unlink."""
        arena = ShmArena(256)
        view = arena.ndarray((4,))
        view[:] = 1.0
        del view
        arena.close()
        arena.close()  # second close must not raise or re-close
        assert arena.name in live_segments()  # still owned, not unlinked
        with pytest.raises(ValueError):
            arena.ndarray((4,))
        assert arena.unlink() is True
        assert not os.path.exists(f"/dev/shm/{arena.name}")

    def test_sigterm_worker_leaves_no_segments(self):
        """A SIGTERM'd worker dies through the OS, not through Python
        cleanup — it must neither unlink the parent's segments on the way
        out nor leave any of its own behind after the parent closes."""
        import signal

        before = set(os.listdir("/dev/shm"))
        mesh, eos = make_state_mesh(levels=1, refine_keys=(0,))
        ex = ProcessHydroExecutor(mesh, eos=eos, nprocs=2)
        ex.ensure()
        victim = ex.engine.localities[1].process
        os.kill(victim.pid, signal.SIGTERM)
        victim.join(timeout=10)
        assert not victim.is_alive()
        # The parent's arenas survive the worker's death untouched.
        assert live_segments()
        with pytest.raises(WorkerCrashError):
            ex.step(1e-4)
        ex.close()
        assert live_segments() == ()
        assert set(os.listdir("/dev/shm")) <= before

    def test_bad_nbytes_typed_errors(self):
        with pytest.raises(TypeError):
            ShmArena(12.5)
        with pytest.raises(TypeError):
            ShmArena(True)
        with pytest.raises(ValueError):
            ShmArena(0)

    def test_worker_crash_leaves_no_segments(self):
        """The FaultSpec crash fate made real: kill a worker mid-run, let
        the typed error propagate, and verify every segment is gone."""
        before = set(os.listdir("/dev/shm"))
        mesh, eos = make_state_mesh(levels=1, refine_keys=(0,))
        ex = ProcessHydroExecutor(mesh, eos=eos, nprocs=2)
        ex.ensure()
        assert live_segments()  # arenas exist while the pool runs
        ex.engine.crash(0)
        with pytest.raises(WorkerCrashError):
            ex.step(1e-4)
        ex.close()
        assert live_segments() == ()
        assert set(os.listdir("/dev/shm")) <= before

    def test_driver_crash_fault_cleans_up(self):
        from repro.core.distributed import DistributedHydroDriver
        from repro.resilience.faults import FaultSpec

        mesh, eos = make_state_mesh(levels=1)
        driver = DistributedHydroDriver(
            mesh, eos=eos, backend="process", nprocs=2,
            faults=FaultSpec(crash_locality=1, crash_step=0),
        )
        with pytest.raises(WorkerCrashError):
            driver.step(1e-4)
        assert live_segments() == ()


def _integrator_pair(backend, mesh_kw, nprocs=2, wire="shm", **kw):
    mesh_a, eos = make_state_mesh(**mesh_kw)
    mesh_b, _ = make_state_mesh(**mesh_kw)
    a = HydroIntegrator(mesh_a, eos, **kw)
    b = HydroIntegrator(
        mesh_b, eos, backend=backend, nprocs=nprocs, wire=wire, **kw
    )
    return a, b, mesh_a, mesh_b


class TestBackendEquivalence:
    """Satellite 3: blast + DWD smoke over backend=["des", "process"]."""

    @pytest.mark.parametrize("backend", ["des", "process"])
    def test_blast_smoke_conserved_sums_and_fields(self, backend):
        from repro.scenarios.blast import sedov_blast

        ref = sedov_blast(levels=1)
        run = sedov_blast(levels=1)
        serial = HydroIntegrator(ref.mesh, ref.eos)
        if backend == "des":
            other = HydroIntegrator(run.mesh, run.eos)
        else:
            other = HydroIntegrator(
                run.mesh, run.eos, backend="process", nprocs=2
            )
        try:
            for _ in range(2):
                dt = serial.timestep()
                serial.step(dt)
                other.step(dt)
        finally:
            other.close()
        assert np.array_equal(conserved_sums(ref.mesh), conserved_sums(run.mesh))
        assert_meshes_identical(ref.mesh, run.mesh)

    @pytest.mark.parametrize("backend", ["des", "process"])
    def test_dwd_smoke_with_gravity(self, backend):
        from repro.gravity.fmm import FmmSolver
        from repro.scenarios.dwd import dwd_scenario

        ref = dwd_scenario(level=1, scf_grid=24)
        run = dwd_scenario(level=1, scf_grid=24)
        serial = HydroIntegrator(
            ref.mesh, ref.eos, omega=ref.omega,
            gravity=FmmSolver(empty_mass_threshold=1e-12).as_gravity_callback(),
        )
        gravity_cb = FmmSolver(
            empty_mass_threshold=1e-12,
        ).as_gravity_callback()
        if backend == "des":
            other = HydroIntegrator(
                run.mesh, run.eos, omega=run.omega, gravity=gravity_cb
            )
        else:
            other = HydroIntegrator(
                run.mesh, run.eos, omega=run.omega, gravity=gravity_cb,
                backend="process", nprocs=2,
            )
        try:
            for _ in range(2):
                dt = serial.timestep()
                serial.step(dt)
                other.step(dt)
        finally:
            other.close()
        assert np.array_equal(conserved_sums(ref.mesh), conserved_sums(run.mesh))
        assert_meshes_identical(ref.mesh, run.mesh)

    def test_pipe_wire_equivalent(self):
        a, b, mesh_a, mesh_b = _integrator_pair(
            "process", dict(levels=1, refine_keys=(0, 3)), nprocs=3, wire="pipe"
        )
        try:
            for _ in range(2):
                dt = a.timestep()
                a.step(dt)
                b.step(dt)
            messages = b._executor.payload_messages
            payload_bytes = b._executor.payload_bytes
        finally:
            b.close()
        assert_meshes_identical(mesh_a, mesh_b)
        # The pipe wire actually moved payload bytes through the parent.
        assert messages > 0
        assert payload_bytes > 0

    def test_fmm_process_backend_bit_identical(self):
        from repro.gravity.fmm import FmmSolver

        mesh, _ = make_state_mesh(levels=1, refine_keys=(2,))
        des = FmmSolver(empty_mass_threshold=1e-12)
        par = FmmSolver(
            empty_mass_threshold=1e-12, backend="process", nprocs=2
        )
        try:
            r_des = des.solve(mesh)
            r_par = par.solve(mesh)
        finally:
            par.close()
        for key in r_des.accel:
            assert np.array_equal(r_des.accel[key], r_par.accel[key])
            assert np.array_equal(r_des.phi[key], r_par.phi[key])

    def test_timers_aggregated_into_registry(self):
        mesh, eos = make_state_mesh(levels=1)
        integ = HydroIntegrator(mesh, eos, backend="process", nprocs=2)
        integ.registry = CounterRegistry()
        try:
            integ.step(1e-4)
        finally:
            integ.close()
        for name in ("hydro.ghost", "hydro.riemann", "hydro.update"):
            assert integ.registry.count(name) >= 1, name
            assert integ.registry.count(f"{name}.workers_mean") >= 1, name
            peak = integ.registry.get(name).maximum
            mean = integ.registry.get(f"{name}.workers_mean").maximum
            assert mean <= peak


class TestRegridPropagation:
    """Satellite 3 (hypothesis): plan invalidation reaches the workers."""

    @given(ops=_mutation_sequences(), nprocs=st.sampled_from([2, 3]))
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_process_backend_tracks_topology_changes(self, ops, nprocs):
        mesh_a, eos = make_state_mesh(levels=1, n=4)
        mesh_b, _ = make_state_mesh(levels=1, n=4)
        a = HydroIntegrator(mesh_a, eos)
        b = HydroIntegrator(mesh_b, eos, backend="process", nprocs=nprocs)
        try:
            dt = a.timestep()
            a.step(dt)
            b.step(dt)
            for op, pick in ops:
                changed = _apply_mutation(mesh_a, op, pick)
                assert _apply_mutation(mesh_b, op, pick) == changed
                dt = a.timestep()
                a.step(dt)
                b.step(dt)
                assert_meshes_identical(mesh_a, mesh_b)
        finally:
            b.close()
        assert live_segments() == ()


class TestCrosscheckHarness:
    def test_crosscheck_passes_with_sources(self):
        mesh, eos = make_state_mesh(levels=1, refine_keys=(1,))
        result = crosscheck_hydro(
            mesh, steps=2, nprocs=2, eos=eos, omega=0.3,
            gravity=lambda: fake_gravity,
        )
        assert result.ok
        assert result.leaves > 0

    def test_crosscheck_detects_divergence(self):
        from repro.core.crosscheck import BackendMismatch, assert_identical

        mesh_a, _ = make_state_mesh(levels=1)
        mesh_b = clone_mesh(mesh_a)
        leaf = mesh_b.leaves()[0]
        leaf.subgrid.data[0] += 1e-9
        with pytest.raises(BackendMismatch):
            assert_identical(mesh_a, mesh_b)

    def test_clone_mesh_is_private_storage(self):
        mesh, _ = make_state_mesh(levels=1, refine_keys=(0,))
        clone = clone_mesh(mesh)
        assert_meshes_identical(mesh, clone)
        clone.leaves()[0].subgrid.data[0] += 1.0
        with pytest.raises(AssertionError):
            assert_meshes_identical(mesh, clone)


class TestDistributedDriverBackend:
    def test_process_step_matches_des_fields(self):
        from repro.core.distributed import DistributedHydroDriver

        mesh_a, eos = make_state_mesh(levels=1, refine_keys=(0,))
        mesh_b, _ = make_state_mesh(levels=1, refine_keys=(0,))
        des = DistributedHydroDriver(mesh_a, eos=eos, omega=0.2)
        par = DistributedHydroDriver(
            mesh_b, eos=eos, omega=0.2, backend="process", nprocs=2
        )
        try:
            r_des = des.step(1e-4)
            r_par = par.step(1e-4)
        finally:
            par.close()
        assert_meshes_identical(mesh_a, mesh_b)
        # The process result reports measured wall-clock, not virtual time.
        assert r_par.makespan_s > 0.0
        assert r_par.control_messages > 0

    def test_invalid_backend_rejected(self):
        from repro.core.distributed import DistributedHydroDriver
        from repro.gravity.fmm import FmmSolver

        mesh, eos = make_state_mesh(levels=0)
        with pytest.raises(ValueError, match="backend"):
            DistributedHydroDriver(mesh, eos=eos, backend="threads")
        with pytest.raises(ValueError, match="backend"):
            HydroIntegrator(mesh, eos, backend="threads")
        with pytest.raises(ValueError, match="backend"):
            FmmSolver(backend="threads")
