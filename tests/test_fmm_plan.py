"""The cached-plan solver: equivalence with the reference path, cache
invalidation semantics and the topology_version contract."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.conftest import fill_gaussian, make_uniform_mesh
from repro.gravity.fmm import FmmSolver
from repro.gravity.plan import build_plan, count_m2l_by_level
from repro.octree.fields import Field
from repro.octree.mesh import AmrMesh

REL_TOL = 1e-13


def _assert_results_close(res, ref, rel_tol=REL_TOL):
    assert set(res.phi) == set(ref.phi)
    phi_scale = max(np.abs(p).max() for p in ref.phi.values())
    acc_scale = max(np.abs(a).max() for a in ref.accel.values())
    for key in ref.phi:
        assert np.abs(res.phi[key] - ref.phi[key]).max() <= rel_tol * phi_scale
        assert np.abs(res.accel[key] - ref.accel[key]).max() <= rel_tol * acc_scale


def _assert_stats_equal(a, b):
    assert a.p2m == b.p2m
    assert a.m2m == b.m2m
    assert a.m2l_pairs == b.m2l_pairs
    assert a.near_pairs == b.near_pairs
    assert a.p2p_pairs == b.p2p_pairs
    assert a.l2l == b.l2l
    assert a.m2l_by_level == b.m2l_by_level


class TestEquivalence:
    def test_level1_matches_reference(self):
        mesh = make_uniform_mesh(1)
        fill_gaussian(mesh)
        solver = FmmSolver()
        res = solver.solve(mesh)
        ref = FmmSolver().solve_reference(mesh)
        _assert_results_close(res, ref)
        _assert_stats_equal(res.stats, ref.stats)

    def test_level2_matches_reference(self, gaussian_mesh_l2):
        solver = FmmSolver()
        res = solver.solve(gaussian_mesh_l2)
        ref = FmmSolver().solve_reference(gaussian_mesh_l2)
        _assert_results_close(res, ref)
        _assert_stats_equal(res.stats, ref.stats)

    def test_adaptive_mesh_matches_reference(self):
        mesh = make_uniform_mesh(1, n=4)
        fill_gaussian(mesh)
        # Off-centre refinement: exercises cross-level P2P classes and the
        # level-mixed near/far lists.
        mesh.refine(sorted(mesh.leaf_keys())[0])
        res = FmmSolver().solve(mesh)
        ref = FmmSolver().solve_reference(mesh)
        _assert_results_close(res, ref)
        _assert_stats_equal(res.stats, ref.stats)

    def test_empty_mass_threshold_matches_reference(self):
        mesh = make_uniform_mesh(1)
        fill_gaussian(mesh)
        # Zero out half the leaves so the threshold actually prunes edges.
        for key in sorted(mesh.leaf_keys())[:4]:
            mesh.nodes[key].subgrid.interior_view(Field.RHO)[:] = 0.0
        kwargs = dict(empty_mass_threshold=1e-8)
        res = FmmSolver(**kwargs).solve(mesh)
        ref = FmmSolver(**kwargs).solve_reference(mesh)
        _assert_results_close(res, ref)

    def test_warm_plan_solve_matches_reference(self, gaussian_mesh_l2):
        solver = FmmSolver()
        solver.solve(gaussian_mesh_l2)  # builds the plan
        res = solver.solve(gaussian_mesh_l2)  # reuses it
        ref = FmmSolver().solve_reference(gaussian_mesh_l2)
        _assert_results_close(res, ref)


class TestPlanCache:
    def test_plan_reused_across_solves(self):
        mesh = make_uniform_mesh(1)
        fill_gaussian(mesh)
        solver = FmmSolver()
        solver.solve(mesh)
        plan = solver._plan
        solver.solve(mesh)
        assert solver._plan is plan

    def test_plan_invalidated_by_refine(self):
        mesh = make_uniform_mesh(1, n=4)
        fill_gaussian(mesh)
        solver = FmmSolver()
        solver.solve(mesh)
        plan = solver._plan
        mesh.refine(sorted(mesh.leaf_keys())[0])
        assert not plan.matches(mesh, solver.theta)
        solver.solve(mesh)
        assert solver._plan is not plan

    def test_plan_invalidated_by_theta_change(self):
        mesh = make_uniform_mesh(1)
        fill_gaussian(mesh)
        solver = FmmSolver()
        solver.solve(mesh)
        plan = solver._plan
        solver.theta = 0.7
        solver.solve(mesh)
        assert solver._plan is not plan
        assert solver._plan.theta == 0.7

    def test_plan_not_shared_between_meshes(self):
        mesh_a = make_uniform_mesh(1, n=4)
        mesh_b = make_uniform_mesh(1, n=4)
        fill_gaussian(mesh_a)
        fill_gaussian(mesh_b)
        solver = FmmSolver()
        solver.solve(mesh_a)
        plan = solver._plan
        # Same topology_version value, different object: must rebuild.
        assert not plan.matches(mesh_b, solver.theta)

    def test_invalidate_plan_forces_rebuild(self):
        mesh = make_uniform_mesh(1)
        fill_gaussian(mesh)
        solver = FmmSolver()
        solver.solve(mesh)
        plan = solver._plan
        solver.invalidate_plan()
        solver.solve(mesh)
        assert solver._plan is not plan


class TestTopologyVersion:
    def test_fresh_mesh_starts_at_zero(self):
        assert AmrMesh(n=4).topology_version == 0

    def test_refine_bumps_version(self):
        mesh = AmrMesh(n=4)
        v0 = mesh.topology_version
        mesh.refine((0, 0))
        assert mesh.topology_version > v0

    def test_derefine_bumps_version(self):
        mesh = AmrMesh(n=4)
        mesh.refine((0, 0))
        v0 = mesh.topology_version
        mesh.derefine((0, 0))
        assert mesh.topology_version > v0


class TestStatsSemantics:
    def test_m2l_by_level_counts_both_directions(self, gaussian_mesh_l2):
        stats = FmmSolver().solve(gaussian_mesh_l2).stats
        assert sum(stats.m2l_by_level.values()) == 2 * stats.m2l_pairs

    def test_count_m2l_by_level_directed(self):
        pairs = [((1, 0), (2, 5)), ((2, 1), (2, 2))]
        assert count_m2l_by_level(pairs) == {1: 1, 2: 3}

    def test_plan_counters_match_reference_stats(self, gaussian_mesh_l2):
        plan = build_plan(gaussian_mesh_l2, 0.5)
        ref = FmmSolver().solve_reference(gaussian_mesh_l2)
        assert plan.n_p2m == ref.stats.p2m
        assert plan.n_m2m == ref.stats.m2m
        assert plan.n_m2l_pairs == ref.stats.m2l_pairs
        assert plan.n_near_pairs == ref.stats.near_pairs
        assert plan.p2p_pair_count == ref.stats.p2p_pairs
        assert plan.n_l2l == ref.stats.l2l


class TestM2LWorkSplitting:
    def test_split_solve_bitwise_identical(self, gaussian_mesh_l2):
        ref = FmmSolver().solve(gaussian_mesh_l2)
        for max_rows in (1, 16, 1000):
            res = FmmSolver(m2l_split=max_rows).solve(gaussian_mesh_l2)
            for key in ref.phi:
                assert np.array_equal(res.phi[key], ref.phi[key])
                assert np.array_equal(res.accel[key], ref.accel[key])

    def test_split_adaptive_bitwise_identical(self):
        mesh = make_uniform_mesh(1, n=4)
        fill_gaussian(mesh)
        mesh.refine(sorted(mesh.leaf_keys())[0])
        ref = FmmSolver().solve(mesh)
        res = FmmSolver(m2l_split=8).solve(mesh)
        for key in ref.phi:
            assert np.array_equal(res.phi[key], ref.phi[key])
            assert np.array_equal(res.accel[key], ref.accel[key])

    def test_shards_partition_the_rows(self, gaussian_mesh_l2):
        plan = build_plan(gaussian_mesh_l2, 0.5)
        total_rows = sum(fl.src_idx.size for fl in plan.far_levels)
        total_targets = sum(fl.tgt_idx.size for fl in plan.far_levels)
        shards = plan.split(16)
        assert len(shards) > len(plan.far_levels)
        assert sum(fl.src_idx.size for fl in shards) == total_rows
        assert sum(fl.tgt_idx.size for fl in shards) == total_targets
        for fl in shards:
            # a shard only exceeds the bound when one target alone does
            assert fl.src_idx.size <= 16 or fl.tgt_idx.size == 1
            assert fl.indptr[0] == 0
            assert fl.indptr[-1] == fl.src_idx.size

    def test_split_zero_returns_unsplit_levels(self, gaussian_mesh_l2):
        plan = build_plan(gaussian_mesh_l2, 0.5)
        assert plan.split(0) is plan.far_levels
        assert plan.split(-1) is plan.far_levels

    def test_split_cached_per_max_rows(self, gaussian_mesh_l2):
        plan = build_plan(gaussian_mesh_l2, 0.5)
        assert plan.split(16) is plan.split(16)
        assert plan.split(16) is not plan.split(32)


class TestProfilingCounters:
    def test_phase_timers_recorded(self):
        from repro.profiling.apex import CounterRegistry

        mesh = make_uniform_mesh(1)
        fill_gaussian(mesh)
        solver = FmmSolver()
        solver.registry = CounterRegistry()
        solver.solve(mesh)
        for name in ("fmm.plan", "fmm.p2m_m2m", "fmm.m2l", "fmm.l2p", "fmm.p2p"):
            assert solver.registry.count(name) == 1
        assert solver.registry.total("fmm.plan_builds") == 1
        solver.solve(mesh)
        assert solver.registry.total("fmm.plan_builds") == 1  # plan reused


@st.composite
def _mutation_sequences(draw):
    """A short sequence of refine/derefine picks (resolved against the live
    mesh when applied)."""
    return draw(
        st.lists(
            st.tuples(st.sampled_from(["refine", "derefine"]), st.integers(0, 63)),
            min_size=1,
            max_size=5,
        )
    )


class TestPlanInvalidationProperty:
    @given(ops=_mutation_sequences())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_reused_solver_tracks_arbitrary_topology_changes(self, ops):
        """A solver reused across arbitrary refine/derefine sequences gives
        the same answer as a fresh solver at every intermediate topology."""
        mesh = make_uniform_mesh(1, n=4)
        fill_gaussian(mesh)
        solver = FmmSolver()
        solver.solve(mesh)  # seed the cache before any mutation
        for op, pick in ops:
            if op == "refine":
                candidates = sorted(
                    k for k in mesh.leaf_keys() if k[0] < 3
                )
                if not candidates:
                    continue
                mesh.refine(candidates[pick % len(candidates)])
            else:
                candidates = []
                for key, node in sorted(mesh.nodes.items()):
                    if node.is_leaf:
                        continue
                    children = [mesh.nodes[k] for k in node.children_keys()]
                    if all(c.is_leaf for c in children):
                        candidates.append(key)
                if not candidates:
                    continue
                try:
                    mesh.derefine(candidates[pick % len(candidates)])
                except ValueError:
                    continue  # would break 2:1 balance
            res = solver.solve(mesh)
            fresh = FmmSolver().solve(mesh)
            _assert_results_close(res, fresh, rel_tol=1e-14)
            _assert_stats_equal(res.stats, fresh.stats)
