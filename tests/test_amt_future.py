"""Future/promise semantics."""

import pytest

from repro.amt.future import (
    Future,
    FutureError,
    Promise,
    make_ready_future,
    when_all,
    when_any,
)


class TestFutureBasics:
    def test_pending_get_raises(self):
        with pytest.raises(FutureError):
            Future().get()

    def test_ready_future(self):
        f = make_ready_future(42)
        assert f.is_ready()
        assert f.get() == 42

    def test_promise_resolves(self):
        p = Promise()
        f = p.get_future()
        assert not f.is_ready()
        p.set_value("done")
        assert f.get() == "done"

    def test_double_set_rejected(self):
        p = Promise()
        p.set_value(1)
        with pytest.raises(FutureError):
            p.set_value(2)

    def test_exception_transport(self):
        p = Promise()
        p.set_exception(ValueError("boom"))
        f = p.get_future()
        assert f.has_exception()
        with pytest.raises(ValueError, match="boom"):
            f.get()

    def test_repr_states(self):
        assert "pending" in repr(Future(name="x"))
        assert "ready" in repr(make_ready_future(1))


class TestContinuations:
    def test_then_on_ready(self):
        f = make_ready_future(10).then(lambda v: v * 2)
        assert f.get() == 20

    def test_then_on_pending(self):
        p = Promise()
        f = p.get_future().then(lambda v: v + 1)
        p.set_value(1)
        assert f.get() == 2

    def test_then_chains(self):
        f = make_ready_future(1).then(lambda v: v + 1).then(lambda v: v * 10)
        assert f.get() == 20

    def test_then_propagates_exception(self):
        p = Promise()
        calls = []
        f = p.get_future().then(lambda v: calls.append(v))
        p.set_exception(RuntimeError("nope"))
        assert f.has_exception()
        assert calls == []

    def test_then_captures_raised_exception(self):
        f = make_ready_future(0).then(lambda v: 1 / v)
        with pytest.raises(ZeroDivisionError):
            f.get()

    def test_callbacks_fire_in_order(self):
        p = Promise()
        order = []
        p.get_future().add_done_callback(lambda _f: order.append(1))
        p.get_future().add_done_callback(lambda _f: order.append(2))
        p.set_value(None)
        assert order == [1, 2]


class TestWhenAll:
    def test_empty(self):
        assert when_all([]).get() == []

    def test_values_in_order(self):
        p1, p2 = Promise(), Promise()
        combined = when_all([p1.get_future(), p2.get_future()])
        p2.set_value("b")
        assert not combined.is_ready()
        p1.set_value("a")
        assert combined.get() == ["a", "b"]

    def test_with_ready_inputs(self):
        assert when_all([make_ready_future(i) for i in range(5)]).get() == list(range(5))

    def test_exception_propagates(self):
        p1, p2 = Promise(), Promise()
        combined = when_all([p1.get_future(), p2.get_future()])
        p1.set_exception(ValueError("x"))
        p2.set_value(1)
        with pytest.raises(ValueError):
            combined.get()


class TestWhenAny:
    def test_first_wins(self):
        p1, p2 = Promise(), Promise()
        any_f = when_any([p1.get_future(), p2.get_future()])
        p2.set_value("second")
        assert any_f.get() == (1, "second")
        p1.set_value("first")  # late resolution must not disturb the result
        assert any_f.get() == (1, "second")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            when_any([])

    def test_ready_input(self):
        assert when_any([make_ready_future(7)]).get() == (0, 7)
