"""reprolint rules against fixture snippets, plus a clean pass on src/."""

import json
import subprocess
import sys
from pathlib import Path

from tools.reprolint import lint_paths, lint_source

REPO = Path(__file__).resolve().parent.parent


def rules(findings):
    return sorted({f.rule for f in findings})


class TestHotLoopAlloc:
    def test_alloc_in_kernel_loop_flagged(self):
        src = (
            "import numpy as np\n"
            "def flux_kernel(n):\n"
            "    for i in range(n):\n"
            "        tmp = np.zeros(8)\n"
        )
        findings = lint_source(src)
        assert rules(findings) == ["R001"]
        assert findings[0].line == 4

    def test_alloc_outside_loop_ok(self):
        src = (
            "import numpy as np\n"
            "def flux_kernel(n):\n"
            "    tmp = np.zeros(8)\n"
            "    for i in range(n):\n"
            "        tmp[i % 8] = i\n"
        )
        assert lint_source(src) == []

    def test_non_kernel_function_exempt(self):
        src = (
            "import numpy as np\n"
            "def setup(n):\n"
            "    for i in range(n):\n"
            "        tmp = np.zeros(8)\n"
        )
        assert lint_source(src) == []

    def test_while_loop_and_alias(self):
        src = (
            "import numpy\n"
            "def kernel(n):\n"
            "    while n:\n"
            "        numpy.empty_like(n)\n"
            "        n -= 1\n"
        )
        assert rules(lint_source(src)) == ["R001"]


class TestGhostWrites:
    def test_ghost_slices_call_flagged(self):
        src = "def f(sg):\n    sg.data[sg.ghost_slices(0, 0)] = 1.0\n"
        assert rules(lint_source(src, "src/repro/hydro/x.py")) == ["R002"]

    def test_ghost_module_exempt(self):
        src = "def f(sg):\n    sg.insert(sg.ghost_slices(0, 0), 1.0)\n"
        assert lint_source(src, "src/repro/octree/ghost.py") == []


class TestRawViewCopy:
    KOKKOS_PREAMBLE = "import numpy as np\nfrom repro.kokkos import View\n"

    def test_copyto_on_data_flagged(self):
        src = self.KOKKOS_PREAMBLE + "def f(a, b):\n    np.copyto(a.data, b.data)\n"
        assert rules(lint_source(src, "src/repro/x.py")) == ["R003"]

    def test_data_aliasing_flagged(self):
        src = self.KOKKOS_PREAMBLE + "def f(a, b):\n    a.data = b.data\n"
        assert rules(lint_source(src, "src/repro/x.py")) == ["R003"]

    def test_gated_on_kokkos_import(self):
        # Plain-numpy modules (e.g. octree internals) copy buffers freely.
        src = "import numpy as np\ndef f(a, b):\n    np.copyto(a.data, b.data)\n"
        assert lint_source(src, "src/repro/octree/x.py") == []

    def test_view_module_exempt(self):
        src = self.KOKKOS_PREAMBLE + "def f(a, b):\n    np.copyto(a.data, b.data)\n"
        assert lint_source(src, "src/repro/kokkos/view.py") == []

    def test_deep_copy_ok(self):
        src = self.KOKKOS_PREAMBLE + "from repro.kokkos import deep_copy\n" \
            "def f(a, b):\n    deep_copy(a, b)\n"
        assert lint_source(src, "src/repro/x.py") == []


class TestBareRandom:
    def test_legacy_global_state_flagged(self):
        src = "import numpy as np\nx = np.random.rand(4)\n"
        assert rules(lint_source(src)) == ["R004"]

    def test_seed_flagged(self):
        src = "import numpy\nnumpy.random.seed(42)\n"
        assert rules(lint_source(src)) == ["R004"]

    def test_default_rng_ok(self):
        src = "import numpy as np\nrng = np.random.default_rng(42)\n"
        assert lint_source(src) == []

    def test_legacy_import_from_flagged(self):
        src = "from numpy.random import rand\n"
        assert rules(lint_source(src)) == ["R004"]

    def test_default_rng_import_ok(self):
        src = "from numpy.random import default_rng\n"
        assert lint_source(src) == []


class TestUncoalescedSend:
    def test_network_send_in_loop_flagged(self):
        src = (
            "def fill(network, faces):\n"
            "    for face in faces:\n"
            "        network.send(face.msg, face.deliver)\n"
        )
        findings = lint_source(src)
        assert rules(findings) == ["R005"]
        assert findings[0].line == 3

    def test_transport_attribute_send_in_while_flagged(self):
        src = (
            "def drain(self):\n"
            "    while self.queue:\n"
            "        self.transport.send(self.queue.pop())\n"
        )
        assert rules(lint_source(src)) == ["R005"]

    def test_send_outside_loop_ok(self):
        src = "def notify(network, msg):\n    network.send(msg, None)\n"
        assert lint_source(src) == []

    def test_unrelated_send_in_loop_ok(self):
        # Only message-layer receivers count; generator .send and queue
        # .send-alikes are not the pattern R005 targets.
        src = (
            "def pump(gen, items):\n"
            "    for item in items:\n"
            "        gen.send(item)\n"
        )
        assert lint_source(src) == []

    def test_sanction_on_send_line(self):
        src = (
            "def retransmit(transport, pending):\n"
            "    for msg in pending:\n"
            "        transport.send(msg)  # reprolint: sanctioned-bundle\n"
        )
        assert lint_source(src) == []

    def test_sanction_on_loop_header(self):
        src = (
            "def ablation(network, faces):\n"
            "    for face in faces:  # reprolint: sanctioned-bundle\n"
            "        network.send(face.msg)\n"
        )
        assert lint_source(src) == []

    def test_nested_loops_report_once(self):
        src = (
            "def storm(network, stages):\n"
            "    for stage in stages:\n"
            "        for face in stage:\n"
            "            network.send(face)\n"
        )
        findings = lint_source(src)
        assert [f.rule for f in findings] == ["R005"]

    def test_sanctioned_outer_loop_still_flags_inner(self):
        # The sanction covers the loop it annotates, not everything under
        # an outer sanctioned loop.
        src = (
            "def mixed(network, stages):\n"
            "    for stage in stages:  # reprolint: sanctioned-bundle\n"
            "        network.flush(stage)\n"
            "        for face in stage:\n"
            "            network.send(face)\n"
        )
        assert rules(lint_source(src)) == ["R005"]


class TestProcessSpawn:
    def test_import_from_flagged(self):
        src = "from multiprocessing import Process\n"
        assert rules(lint_source(src, "src/repro/core/x.py")) == ["R006"]
        src = "from multiprocessing.context import Pool\n"
        assert rules(lint_source(src, "src/repro/core/x.py")) == ["R006"]

    def test_attribute_spawn_flagged(self):
        src = (
            "import multiprocessing\n"
            "p = multiprocessing.Process(target=print)\n"
        )
        assert rules(lint_source(src, "src/repro/x.py")) == ["R006"]
        src = "import multiprocessing as mp\npool = mp.Pool(4)\n"
        assert rules(lint_source(src, "src/repro/x.py")) == ["R006"]

    def test_get_context_spawn_flagged(self):
        src = (
            "import multiprocessing as mp\n"
            "p = mp.get_context('fork').Process(target=print)\n"
        )
        assert rules(lint_source(src, "src/repro/x.py")) == ["R006"]

    def test_context_variable_spawn_flagged(self):
        src = (
            "import multiprocessing as mp\n"
            "ctx = mp.get_context('fork')\n"
            "p = ctx.Process(target=print)\n"
        )
        assert rules(lint_source(src, "src/repro/x.py")) == ["R006"]

    def test_parallel_module_exempt(self):
        src = (
            "import multiprocessing as mp\n"
            "p = mp.Process(target=print)\n"
        )
        assert lint_source(src, "src/repro/amt/parallel.py") == []

    def test_unrelated_process_attribute_ok(self):
        src = "import psutil\np = psutil.Process()\n"
        assert lint_source(src, "src/repro/x.py") == []
        src = "from multiprocessing import shared_memory\n"
        assert lint_source(src, "src/repro/x.py") == []


_SHM_PRELUDE = (
    "import numpy as np\n"
    "from repro.amt.shm import ShmArena\n"
    "arena = ShmArena(64)\n"
    "view = arena.ndarray((8,), dtype=np.float64)\n"
)


class TestShmWriteDiscipline:
    def test_bare_write_flagged(self):
        src = _SHM_PRELUDE + "def f(x):\n    view[0] = x\n"
        assert rules(lint_source(src, "src/repro/x.py")) == ["R007"]

    def test_augassign_and_copyto_flagged(self):
        src = _SHM_PRELUDE + (
            "def f(x):\n"
            "    view[1:] += x\n"
            "    np.copyto(view, x)\n"
        )
        findings = lint_source(src, "src/repro/x.py")
        assert [f.rule for f in findings] == ["R007", "R007"]

    def test_dispatch_class_method_ok(self):
        src = _SHM_PRELUDE + (
            "class Worker:\n"
            "    def dispatch(self, cmd):\n"
            "        self.apply(cmd)\n"
            "    def apply(self, cmd):\n"
            "        view[0] = cmd\n"
        )
        assert lint_source(src, "src/repro/x.py") == []

    def test_declare_effects_ok(self):
        src = _SHM_PRELUDE + (
            "from repro.analysis.effects import declare_effects\n"
            "@declare_effects(writes=[('accel', None, 'shm')])\n"
            "def f(x):\n"
            "    view[0] = x\n"
        )
        assert lint_source(src, "src/repro/x.py") == []

    def test_sanction_comment_ok(self):
        src = _SHM_PRELUDE + (
            "def f(x):\n"
            "    view[0] = x  # reprolint: sanctioned-shm\n"
        )
        assert lint_source(src, "src/repro/x.py") == []

    def test_gated_on_shm_import(self):
        src = (
            "import numpy as np\n"
            "view = np.zeros(8)\n"
            "def f(x):\n"
            "    view[0] = x\n"
        )
        assert lint_source(src, "src/repro/x.py") == []

    def test_shm_module_itself_exempt(self):
        src = _SHM_PRELUDE + "def f(x):\n    view[0] = x\n"
        assert lint_source(src, "src/repro/amt/shm.py") == []


class TestFlatWirePayloads:
    def test_mesh_payload_flagged(self):
        src = "def f(engine, mesh):\n    engine.send(0, ('adopt', mesh))\n"
        assert rules(lint_source(src, "src/repro/x.py")) == ["R008"]

    def test_subgrid_and_data_views_flagged(self):
        src = (
            "def f(conn, node):\n"
            "    conn.send(node.subgrid)\n"
            "    conn.send(node.data)\n"
        )
        findings = lint_source(src, "src/repro/x.py")
        assert [f.rule for f in findings] == ["R008", "R008"]

    def test_lambda_over_wire_flagged(self):
        src = "def f(engine):\n    engine.round(('cb', lambda x: x))\n"
        assert rules(lint_source(src, "src/repro/x.py")) == ["R008"]

    def test_flat_payload_ok(self):
        src = (
            "def f(engine, buf):\n"
            "    engine.send(0, ('ghost_unpack', buf, 1.5))\n"
            "    engine.broadcast(('update', 0.1, True))\n"
        )
        assert lint_source(src, "src/repro/x.py") == []

    def test_non_wire_owner_ok(self):
        src = "def f(sock, mesh):\n    sock.send(mesh)\n"
        assert lint_source(src, "src/repro/x.py") == []

    def test_sanction_comment_ok(self):
        src = (
            "def f(conn, mesh):\n"
            "    conn.send(mesh)  # reprolint: sanctioned-wire\n"
        )
        assert lint_source(src, "src/repro/x.py") == []


class TestDriver:
    def test_src_tree_is_clean(self):
        assert lint_paths([str(REPO / "src")]) == []

    def test_tools_and_benchmarks_are_clean(self):
        assert lint_paths([str(REPO / "tools"), str(REPO / "benchmarks")]) == []

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        findings = lint_paths([str(tmp_path)])
        assert rules(findings) == ["R000"]

    def test_module_entrypoint_exit_codes(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "src/"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_module_entrypoint_flags_bad_file(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", str(bad)],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "R004" in proc.stdout

    def test_usage_exit_code(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 2

    def test_unparseable_exit_code(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", str(tmp_path)],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 3
        assert "R000" in proc.stdout

    def test_json_output_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "--json",
             "tools/"],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["files_checked"] > 0

    def test_json_output_findings(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nnp.random.seed(1)\n")
        proc = subprocess.run(
            [sys.executable, "-m", "tools.reprolint", "--json", str(bad)],
            cwd=REPO, capture_output=True, text=True,
        )
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["clean"] is False
        [finding] = payload["findings"]
        assert finding["rule"] == "R004"
        assert finding["line"] == 2
        assert finding["path"].endswith("bad.py")


class TestBackendImports:
    def test_direct_numba_import_flagged(self):
        assert rules(lint_source(
            "import numba\n", "src/repro/hydro/fast.py"
        )) == ["R009"]

    def test_from_import_flagged(self):
        assert rules(lint_source(
            "from cupy import asarray\n", "src/repro/gravity/gpu.py"
        )) == ["R009"]

    def test_submodule_import_flagged(self):
        assert rules(lint_source(
            "import jax.numpy as jnp\n", "src/repro/hydro/fast.py"
        )) == ["R009"]

    def test_importlib_sidedoor_flagged(self):
        src = (
            "import importlib\n"
            "numba = importlib.import_module('numba')\n"
        )
        assert rules(lint_source(src, "src/repro/hydro/fast.py")) == ["R009"]

    def test_registry_module_exempt(self):
        src = "import importlib\nimport numba\nimport cupy\nimport jax\n"
        assert lint_source(src, "src/repro/kokkos/backend.py") == []

    def test_relative_import_not_confused(self):
        # `from .numba import x` is a package-local module, not the JIT.
        src = "from .numba import helper\n"
        assert lint_source(src, "src/repro/hydro/fast.py") == []

    def test_unrelated_imports_ok(self):
        assert lint_source(
            "import numpy as np\nimport importlib\n",
            "src/repro/hydro/fast.py",
        ) == []


class TestColdPlanBuild:
    def test_cold_build_in_loop_flagged(self):
        src = (
            "for step in range(10):\n"
            "    plan = build_hydro_plan(mesh)\n"
        )
        assert rules(lint_source(src, "src/repro/core/driver.py")) == ["R010"]

    def test_method_call_in_while_flagged(self):
        src = (
            "while t < t_end:\n"
            "    plan = planner.build_bundle_plan(mesh, offsets)\n"
        )
        assert rules(lint_source(src, "src/repro/core/driver.py")) == ["R010"]

    def test_all_builders_covered(self):
        for fn in ("build_plan", "build_hydro_plan", "build_bundle_plan",
                   "ghost_index_plan"):
            src = f"for _ in steps:\n    p = {fn}(mesh)\n"
            assert rules(lint_source(src, "src/repro/x.py")) == ["R010"], fn

    def test_sanctioned_call_line_ok(self):
        src = (
            "for step in range(10):\n"
            "    plan = build_hydro_plan(mesh)"
            "  # reprolint: sanctioned-cold-build\n"
        )
        assert lint_source(src, "src/repro/core/driver.py") == []

    def test_sanctioned_loop_header_ok(self):
        src = (
            "for level in levels:  # reprolint: sanctioned-cold-build\n"
            "    plan = build_plan(mesh, theta=0.5)\n"
        )
        assert lint_source(src, "src/repro/cli.py") == []

    def test_cold_build_outside_loop_ok(self):
        src = "plan = build_hydro_plan(mesh)\n"
        assert lint_source(src, "src/repro/hydro/integrator.py") == []

    def test_nested_loop_reported_once(self):
        src = (
            "for a in outer:\n"
            "    for b in inner:\n"
            "        p = ghost_index_plan(mesh, offsets)\n"
        )
        findings = lint_source(src, "src/repro/x.py")
        assert [f.rule for f in findings] == ["R010"]

    def test_unrelated_call_in_loop_ok(self):
        src = "for s in steps:\n    integrator.plan_for(mesh)\n"
        assert lint_source(src, "src/repro/core/driver.py") == []


class TestBarrierRoundInLoop:
    def test_barrier_round_in_for_loop_flagged(self):
        src = (
            "for stage in stages:\n"
            "    engine.round(('rhs', True))\n"
        )
        assert rules(lint_source(src, "src/repro/hydro/x.py")) == ["R011"]

    def test_attribute_owner_in_while_flagged(self):
        src = (
            "while t < t_end:\n"
            "    self.engine.round(('update', a0, a1, dt))\n"
        )
        assert rules(lint_source(src, "src/repro/hydro/x.py")) == ["R011"]

    def test_sanctioned_call_line_ok(self):
        src = (
            "for stage in stages:\n"
            "    engine.round(('reflux',))"
            "  # reprolint: sanctioned-barrier\n"
        )
        assert lint_source(src, "src/repro/hydro/x.py") == []

    def test_sanctioned_loop_header_ok(self):
        src = (
            "for stage in stages:  # reprolint: sanctioned-barrier\n"
            "    engine.round(('rhs', True))\n"
        )
        assert lint_source(src, "src/repro/hydro/x.py") == []

    def test_round_outside_loop_ok(self):
        src = "engine.round(('begin',))\n"
        assert lint_source(src, "src/repro/hydro/x.py") == []

    def test_async_round_in_loop_ok(self):
        src = "for stage in stages:\n    engine.round_async(cmd, on_note=h)\n"
        assert lint_source(src, "src/repro/hydro/x.py") == []

    def test_numpy_round_in_loop_ok(self):
        src = "for v in vals:\n    out.append(np.round(v))\n"
        assert lint_source(src, "src/repro/hydro/x.py") == []

    def test_nested_loop_reported_once(self):
        src = (
            "for a in outer:\n"
            "    for b in inner:\n"
            "        engine.round(('rhs',))\n"
        )
        findings = lint_source(src, "src/repro/x.py")
        assert [f.rule for f in findings] == ["R011"]
