"""API summary generator."""

import subprocess
import sys
from pathlib import Path


class TestApiSummary:
    def test_generator_runs_and_covers_subpackages(self, tmp_path):
        out = tmp_path / "API.md"
        result = subprocess.run(
            [sys.executable, "tools/gen_api_summary.py", str(out)],
            capture_output=True,
            text=True,
            cwd=Path(__file__).resolve().parents[1],
        )
        assert result.returncode == 0, result.stderr
        text = out.read_text()
        for section in (
            "repro.amt",
            "repro.kokkos",
            "repro.gravity",
            "repro.distsim",
        ):
            assert f"## `{section}`" in text
        # Spot-check key public items are documented.
        for item in ("FmmSolver", "OctoTigerSim", "HpxSpace", "simulate_step"):
            assert f"`{item}`" in text

    def test_committed_copy_exists(self):
        api = Path(__file__).resolve().parents[1] / "docs" / "API.md"
        assert api.exists()
        assert "repro.core" in api.read_text()
