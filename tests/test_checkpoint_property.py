"""Property-based checkpoint round-trips over random meshes and data."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ioutil import load_checkpoint, save_checkpoint
from repro.octree import AmrMesh


@st.composite
def random_mesh(draw, ghost=None):
    """A small random 2:1-balanced mesh with random field data.

    ``ghost=None`` also draws the ghost width, so the round-trip property
    covers non-default halo sizes (the container stores ``ghost`` and must
    reproduce it; a restart with the wrong width would silently corrupt
    every face exchange).
    """
    if ghost is None:
        ghost = draw(st.integers(1, 3))
    mesh = AmrMesh(n=4, ghost=ghost, domain_size=2.0)
    mesh.refine((0, 0))
    picks = draw(st.lists(st.integers(0, 200), min_size=0, max_size=4))
    for pick in picks:
        leaves = sorted(mesh.leaf_keys())
        key = leaves[pick % len(leaves)]
        if key[0] < 3 and mesh.nodes[key].is_leaf:
            mesh.refine(key)
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    for node in mesh.nodes.values():
        node.subgrid.data[:] = rng.standard_normal(node.subgrid.data.shape)
    return mesh


# JSON-representable scalars: what ``meta["extra"]`` must carry unchanged
# (json round-trips Python floats exactly via repr, so equality is exact).
_extra_values = st.one_of(
    st.booleans(),
    st.integers(-(2**53), 2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
)


class TestCheckpointProperties:
    @given(mesh=random_mesh())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_round_trip_is_identity(self, mesh, tmp_path_factory):
        path = tmp_path_factory.mktemp("chk") / "state"
        written = save_checkpoint(mesh, path, time=0.25, step=7)
        restored, meta = load_checkpoint(written)
        assert meta["step"] == 7
        assert meta["ghost"] == mesh.ghost
        assert restored.ghost == mesh.ghost
        assert set(restored.nodes) == set(mesh.nodes)
        for key, node in mesh.nodes.items():
            other = restored.nodes[key]
            assert other.is_leaf == node.is_leaf
            np.testing.assert_array_equal(other.subgrid.data, node.subgrid.data)
        restored.check_invariants()

    @given(
        mesh=random_mesh(ghost=2),
        extra=st.dictionaries(
            st.text(min_size=1, max_size=12), _extra_values, max_size=5
        ),
    )
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_extra_metadata_round_trips(self, mesh, extra, tmp_path_factory):
        path = tmp_path_factory.mktemp("chk-extra") / "state"
        written = save_checkpoint(mesh, path, time=1.5, step=3, extra=extra)
        _, meta = load_checkpoint(written)
        assert meta["extra"] == extra
        assert meta["time"] == 1.5

    @given(mesh=random_mesh())
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_double_round_trip_stable(self, mesh, tmp_path_factory):
        base = tmp_path_factory.mktemp("chk2")
        p1 = save_checkpoint(mesh, base / "a")
        m1, _ = load_checkpoint(p1)
        p2 = save_checkpoint(m1, base / "b")
        m2, _ = load_checkpoint(p2)
        for key in mesh.nodes:
            np.testing.assert_array_equal(
                m2.nodes[key].subgrid.data, mesh.nodes[key].subgrid.data
            )


class TestRestartEquivalence:
    """Checkpoint-restart must be invisible to the physics.

    ``step -> checkpoint -> restore -> step`` has to equal two
    uninterrupted steps *bit-exactly* — this is what makes the driver's
    rollback-and-replay recovery produce the same answer as a run that
    never faulted.
    """

    def test_mid_run_restart_is_bit_exact(self, tmp_path):
        from repro.core import OctoTigerSim
        from tests.test_distributed_driver import build_mesh, clone

        mesh_ref, eos = build_mesh()
        mesh_chk = clone(mesh_ref)

        reference = OctoTigerSim(mesh_ref, eos=eos, gravity=False, nodes=2)
        reference.run(2)

        first = OctoTigerSim(mesh_chk, eos=eos, gravity=False, nodes=2)
        first.run(1)
        path = first.save_checkpoint(tmp_path / "mid")

        resumed = OctoTigerSim.from_checkpoint(
            path, eos=eos, gravity=False, nodes=2
        )
        assert resumed.integrator.steps_taken == 1
        assert resumed.integrator.time == first.integrator.time
        resumed.run(1)

        assert resumed.integrator.steps_taken == reference.integrator.steps_taken
        assert resumed.integrator.time == reference.integrator.time
        for key in mesh_ref.leaf_keys():
            np.testing.assert_array_equal(
                resumed.mesh.nodes[key].subgrid.interior_view(),
                mesh_ref.nodes[key].subgrid.interior_view(),
            )
