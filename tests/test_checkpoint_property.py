"""Property-based checkpoint round-trips over random meshes and data."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ioutil import load_checkpoint, save_checkpoint
from repro.octree import AmrMesh


@st.composite
def random_mesh(draw):
    """A small random 2:1-balanced mesh with random field data."""
    mesh = AmrMesh(n=4, ghost=2, domain_size=2.0)
    mesh.refine((0, 0))
    picks = draw(st.lists(st.integers(0, 200), min_size=0, max_size=4))
    for pick in picks:
        leaves = sorted(mesh.leaf_keys())
        key = leaves[pick % len(leaves)]
        if key[0] < 3 and mesh.nodes[key].is_leaf:
            mesh.refine(key)
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    for node in mesh.nodes.values():
        node.subgrid.data[:] = rng.standard_normal(node.subgrid.data.shape)
    return mesh


class TestCheckpointProperties:
    @given(mesh=random_mesh())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_round_trip_is_identity(self, mesh, tmp_path_factory):
        path = tmp_path_factory.mktemp("chk") / "state"
        written = save_checkpoint(mesh, path, time=0.25, step=7)
        restored, meta = load_checkpoint(written)
        assert meta["step"] == 7
        assert set(restored.nodes) == set(mesh.nodes)
        for key, node in mesh.nodes.items():
            other = restored.nodes[key]
            assert other.is_leaf == node.is_leaf
            np.testing.assert_array_equal(other.subgrid.data, node.subgrid.data)
        restored.check_invariants()

    @given(mesh=random_mesh())
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_double_round_trip_stable(self, mesh, tmp_path_factory):
        base = tmp_path_factory.mktemp("chk2")
        p1 = save_checkpoint(mesh, base / "a")
        m1, _ = load_checkpoint(p1)
        p2 = save_checkpoint(m1, base / "b")
        m2, _ = load_checkpoint(p2)
        for key in mesh.nodes:
            np.testing.assert_array_equal(
                m2.nodes[key].subgrid.data, mesh.nodes[key].subgrid.data
            )
