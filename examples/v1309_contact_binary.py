#!/usr/bin/env python
"""The V1309 Scorpii progenitor: a near-contact binary with a common
envelope (paper SIII-A).

Builds the scenario, shows the density structure along the line of centres,
evolves it briefly, and prices the paper's full 17 M sub-grid production
workload across the three machines of Fig. 4.

    python examples/v1309_contact_binary.py
"""

import numpy as np

from repro.core import OctoTigerSim
from repro.core.diagnostics import diagnostics
from repro.distsim import RunConfig, simulate_step
from repro.machines import FUGAKU, PIZ_DAINT, SUMMIT
from repro.scenarios import v1309_scenario


def main() -> None:
    print("Building the V1309 near-contact binary (SCF + envelope overlay)...")
    scenario = v1309_scenario(level=2, scf_grid=32)
    mesh = scenario.mesh
    print(f"  mesh: {mesh.n_subgrids()} sub-grids, omega = {scenario.omega:.4f}")

    # Density profile along the line of centres.
    model = scenario.scf
    j = model.n // 2
    axis = -1.0 + (2.0 / model.n) * (np.arange(model.n) + 0.5)
    profile = model.rho[:, j, j]
    print("\n  density along the line of centres:")
    for i in range(0, model.n, 2):
        bar = "#" * int(profile[i] / max(profile.max(), 1e-30) * 50)
        print(f"    x={axis[i]:+.2f}  {profile[i]:.4f}  {bar}")

    sim = OctoTigerSim(
        mesh, eos=scenario.eos, omega=scenario.omega, machine=FUGAKU, nodes=4
    )
    before = diagnostics(mesh)
    print("\nEvolving 3 steps in the co-rotating frame...")
    sim.run(3)
    after = diagnostics(mesh)
    print(f"  mass drift {after.mass - before.mass:+.2e}; star tracer masses "
          f"{after.tracer_masses[0]:.4f}/{after.tracer_masses[1]:.4f}")

    print("\nPricing the paper's production workload (17 M sub-grids, Fig. 4):")
    production = v1309_scenario(level=11, build_mesh=False).spec
    for machine, nodes, gpu in ((SUMMIT, 16, True), (PIZ_DAINT, 16, True), (FUGAKU, 16, False)):
        result = simulate_step(
            production, RunConfig(machine=machine, nodes=nodes, use_gpus=gpu)
        )
        print(
            f"  {machine.name:<10} @ {nodes} nodes: "
            f"{result.subgrids_per_second:.3e} sub-grids/s "
            f"({result.job_power_w / 1e3:.1f} kW)"
        )


if __name__ == "__main__":
    main()
