#!/usr/bin/env python
"""The q = 0.7 double-white-dwarf scenario (paper SIII-B, Fig. 1).

Builds the DWD binary with the SCF solver, checks the donor against its
Roche lobe, evolves a few orbits' worth of steps in the co-rotating frame
and tracks the two stars through their tracer fields — the configuration
that, run long enough at production resolution, undergoes the dynamical
mass transfer of the paper's Fig. 1.

    python examples/dwd_merger.py [steps]
"""

import sys

import numpy as np

from repro.core import OctoTigerSim
from repro.core.diagnostics import diagnostics
from repro.machines import FUGAKU
from repro.scenarios import dwd_scenario
from repro.scf import roche_lobe_radius


def main(steps: int = 4) -> None:
    print("Building the q~0.7 DWD binary (SCF)...")
    scenario = dwd_scenario(level=2, scf_grid=32)
    mesh = scenario.mesh
    m1, m2 = scenario.scf.star_masses
    print(f"  masses: accretor {m1:.4f}, donor {m2:.4f}  (q = {scenario.mass_ratio:.3f})")
    print(f"  orbital omega = {scenario.omega:.4f}, period = {2 * np.pi / scenario.omega:.2f}")

    # Roche-lobe diagnostic for the donor.
    prof = scenario.scf.rho[:, scenario.scf.n // 2, scenario.scf.n // 2]
    axis = -1.0 + (2.0 / scenario.scf.n) * (np.arange(scenario.scf.n) + 0.5)
    right = np.where(axis >= scenario.scf.split_x, prof, 0.0)
    left = np.where(axis < scenario.scf.split_x, prof, 0.0)
    separation = axis[np.argmax(right)] - axis[np.argmax(left)]
    lobe = roche_lobe_radius(scenario.mass_ratio, separation)
    donor_radius = 0.5 * (right > 1e-4 * right.max()).sum() * (axis[1] - axis[0])
    print(
        f"  separation {separation:.3f}; donor radius ~{donor_radius:.3f} vs "
        f"Roche lobe {lobe:.3f} (fill factor {donor_radius / lobe:.2f})"
    )

    sim = OctoTigerSim(
        mesh, eos=scenario.eos, omega=scenario.omega, machine=FUGAKU, nodes=2
    )
    before = diagnostics(mesh)
    print(f"\nEvolving {steps} steps...")
    for record in sim.run(steps):
        print(
            f"  step {record.step}: dt={record.dt:.3e}, "
            f"{record.cells_per_second:.3e} cells/s (virtual)"
        )
    after = diagnostics(mesh)
    print("\nBinary bookkeeping:")
    print(f"  total mass drift : {after.mass - before.mass:+.3e}")
    print(
        "  star masses (tracers): "
        f"{after.tracer_masses[0]:.5f} / {after.tracer_masses[1]:.5f} "
        f"(was {before.tracer_masses[0]:.5f} / {before.tracer_masses[1]:.5f})"
    )
    print(f"  COM displacement : {np.linalg.norm(after.com - before.com):.3e}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4)
