#!/usr/bin/env python
"""Performance portability in one file (paper SIV + SVII-A).

The same kernel source runs:

1. under every SIMD ABI (scalar / NEON / AVX2 / SVE-512) via the pack
   abstraction — the "adding SVE support was trivial" mechanism, with
   measured wall-time speedups;
2. on every execution space (Serial, HPX with task splitting, simulated
   device) via the Kokkos-analog dispatch — the "no kernel changes between
   CPU and GPU" mechanism.

    python examples/simd_portability_demo.py
"""

import time

import numpy as np

from repro.amt import Runtime, when_all
from repro.kokkos import (
    DeviceSpace,
    HpxSpace,
    RangePolicy,
    SerialSpace,
    parallel_for,
    parallel_for_async,
)
from repro.simd import available_abis, get_abi, vector_map


def flux_kernel(rho, mom, e):
    """One pack-generic kernel, written once."""
    v = mom / rho
    p = (e - mom * v * 0.5) * (2.0 / 3.0)
    return mom * v + p


def simd_part() -> None:
    n = 4096
    rng = np.random.default_rng(0)
    rho = rng.random(n) + 0.5
    mom = rng.random(n) - 0.5
    e = rng.random(n) + 2.0
    out = np.zeros(n)

    print("Part 1: one kernel, every SIMD ABI (measured wall time)")
    reference = None
    t_scalar = None
    for name in ("scalar", "neon128", "avx2", "avx512", "sve512"):
        abi = get_abi(name)
        start = time.perf_counter()
        vector_map(flux_kernel, abi, out, rho, mom, e)
        elapsed = time.perf_counter() - start
        if reference is None:
            reference = out.copy()
            t_scalar = elapsed
        else:
            assert np.allclose(out, reference), "ABIs must agree bit-for-bit-ish"
        print(
            f"  {name:<8} lanes={abi.lanes():<2d}  {elapsed * 1e3:7.2f} ms  "
            f"({t_scalar / elapsed:4.1f}x vs scalar)"
        )


def spaces_part() -> None:
    print("\nPart 2: one functor, every execution space")
    n = 1 << 16
    data = np.zeros(n)

    def functor(begin, end):
        x = np.arange(begin, end, dtype=np.float64)
        data[begin:end] = np.sqrt(x + 1.0)

    policy = RangePolicy(0, n, work_per_item=50.0)

    serial = SerialSpace(simd_abi="sve512")
    parallel_for(serial, policy, functor)
    expected = data.copy()

    rt = Runtime(n_localities=1, workers_per_locality=8)
    hpx = HpxSpace(rt.here(), tasks_per_kernel=8, simd_abi="sve512")
    data[:] = 0
    parallel_for(hpx, policy, functor)
    assert np.array_equal(data, expected)
    print(
        f"  HPX space: {hpx.stats.tasks} tasks for {hpx.stats.launches} launch, "
        f"virtual makespan {rt.engine.now * 1e6:.1f} us"
    )

    rt2 = Runtime(n_localities=1, workers_per_locality=2)
    device = DeviceSpace(rt2.localities[0], aggregation_size=4)
    data[:] = 0
    futures = [
        parallel_for_async(device, RangePolicy(i, i + n // 4, work_per_item=50.0), functor)
        for i in range(0, n, n // 4)
    ]
    rt2.run_until_ready(when_all(futures))
    assert np.array_equal(data, expected)
    print(
        f"  Device space: {device.stats.launches} aggregated launches for "
        f"4 kernels, virtual time {rt2.engine.now * 1e6:.1f} us"
    )
    print("\nSame results from every backend — the portability contract holds.")


if __name__ == "__main__":
    simd_part()
    spaces_part()
