#!/usr/bin/env python
"""The Fugaku scaling study (paper SVI-D / Fig. 6 + Table II), end to end.

Evaluates the distributed performance model for the rotating star at levels
5-7 from 1 to 1024 nodes, prints the cells/s series with the step-time
breakdown, and tabulates the job power the PowerAPI analog reports.

    python examples/fugaku_scaling_study.py
"""

from repro.distsim import RunConfig, scaling_curve, simulate_step
from repro.distsim.sweep import node_series
from repro.machines import FUGAKU
from repro.scenarios import ROTATING_STAR_LEVELS, rotating_star


def main() -> None:
    print("Rotating star on Supercomputer Fugaku (SVE + comm optimization)\n")
    series = {5: node_series(1, 256), 6: node_series(128, 1024), 7: [400, 512, 1024]}

    for level, nodes in series.items():
        spec = rotating_star(level=level, build_mesh=False).spec
        print(
            f"level {level}: {ROTATING_STAR_LEVELS[level]:,} cells "
            f"({spec.n_subgrids:,} sub-grids)"
        )
        curve = scaling_curve(spec, FUGAKU, nodes, simd=True)
        print("  nodes   cells/s      hydro     gravity   multipole  sync      util")
        for p in curve:
            print(
                f"  {p.nodes:5d}   {p.cells_per_second:.3e}  "
                f"{p.hydro_s:.2e}  {p.gravity_s:.2e}  {p.multipole_s:.2e}  "
                f"{p.sync_s:.2e}  {p.utilization:.2f}"
            )
        print()

    print("Average job power (W), the Table II analog:")
    print("  level   " + "  ".join(f"{n:>8d}" for n in (4, 16, 32, 128, 256, 1024)))
    for level in (5, 6, 7):
        spec = rotating_star(level=level, build_mesh=False).spec
        row = []
        for n in (4, 16, 32, 128, 256, 1024):
            r = simulate_step(spec, RunConfig(machine=FUGAKU, nodes=n))
            row.append(f"{r.job_power_w:8.0f}")
        print(f"  {level:<7d}" + "  ".join(row))
    print(
        "\nPaper reference points: level 5 @16 nodes ~1146 W, level 6 @1024 "
        "~111261 W, level 7 @512 ~55311 W."
    )


if __name__ == "__main__":
    main()
