#!/usr/bin/env python
"""Distributed execution, for real: the same step as a task graph.

Runs one hydro step twice — once through the serial reference integrator
and once as a distributed task graph on the virtual AMT runtime (ghost
messages, promise-guarded local reads, anti-dependencies) — and shows that
the *field values are identical* while the distributed run reports genuine
scheduling information: makespan, message counts, and the effect of the
paper's communication optimization (SVII-B).

    python examples/distributed_execution_demo.py
"""

import numpy as np

from repro.core import DistributedHydroDriver
from repro.distsim import RunConfig
from repro.hydro import HydroIntegrator, IdealGasEOS
from repro.machines import FUGAKU
from repro.octree import AmrMesh, Field


def build_mesh():
    eos = IdealGasEOS()
    mesh = AmrMesh(n=8, ghost=2, domain_size=2.0)
    mesh.refine((0, 0))
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        rho = 1.0 + 0.4 * np.exp(-((x + 0.3) ** 2 + y**2 + z**2) / 0.1)
        eint = np.full_like(rho, 2.5)
        leaf.subgrid.set_interior(Field.RHO, rho)
        leaf.subgrid.set_interior(Field.SX, 0.05 * rho * np.cos(np.pi * y))
        leaf.subgrid.set_interior(Field.EGAS, eint)
        leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
    mesh.restrict_all()
    return mesh, eos


def clone(mesh):
    from repro.octree.node import OctreeNode

    out = AmrMesh(n=mesh.n, ghost=mesh.ghost, domain_size=mesh.domain_size)
    out.nodes.clear()
    for key, node in mesh.nodes.items():
        c = OctreeNode(key[0], key[1], n=mesh.n, ghost=mesh.ghost,
                       domain_size=mesh.domain_size)
        c.is_leaf = node.is_leaf
        np.copyto(c.subgrid.data, node.subgrid.data)
        out.nodes[key] = c
    return out


def main() -> None:
    base, eos = build_mesh()
    dt = 1e-3
    print(f"Mesh: {base.n_subgrids()} sub-grids, dt = {dt:g}\n")

    serial_mesh = clone(base)
    HydroIntegrator(serial_mesh, eos, reflux=False).step(dt)

    print("Distributed execution across locality counts:")
    for nodes in (1, 2, 4, 8):
        mesh = clone(base)
        driver = DistributedHydroDriver(
            mesh, eos, config=RunConfig(machine=FUGAKU, nodes=nodes)
        )
        result = driver.step(dt)
        worst = max(
            np.abs(
                mesh.nodes[k].subgrid.interior_view()
                - serial_mesh.nodes[k].subgrid.interior_view()
            ).max()
            for k in base.leaf_keys()
        )
        print(
            f"  {nodes} localities: makespan {result.makespan_s * 1e3:7.3f} ms, "
            f"{result.messages:3d} messages, {result.tasks_completed:4d} tasks, "
            f"max |field diff vs serial| = {worst:.2e}"
        )

    print("\nCommunication optimization (paper SVII-B) on 2 localities:")
    for opt in (True, False):
        mesh = clone(base)
        driver = DistributedHydroDriver(
            mesh, eos,
            config=RunConfig(machine=FUGAKU, nodes=2, comm_local_optimization=opt),
        )
        result = driver.step(dt)
        print(
            f"  optimization {'ON ' if opt else 'OFF'}: "
            f"{result.messages} messages, makespan {result.makespan_s * 1e3:.3f} ms"
        )


if __name__ == "__main__":
    main()
