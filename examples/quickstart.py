#!/usr/bin/env python
"""Quickstart: build a rotating star, evolve it, watch the invariants.

Runs in about a minute on a laptop: a self-consistent-field equilibrium is
deposited onto a density-refined AMR octree and advanced a few RK3 steps
with FMM gravity in the co-rotating frame, while the virtual runtime prices
every step on a Fugaku node.

    python examples/quickstart.py
"""

from repro.core import OctoTigerSim
from repro.core.diagnostics import diagnostics
from repro.machines import FUGAKU
from repro.scenarios import rotating_star


def main() -> None:
    print("Building the rotating-star scenario (SCF + AMR deposit)...")
    scenario = rotating_star(level=2, scf_grid=32)
    mesh = scenario.mesh
    print(
        f"  mesh: {mesh.n_subgrids()} sub-grids, {mesh.n_cells()} cells, "
        f"max level {mesh.max_level()}"
    )
    print(f"  equilibrium omega = {scenario.omega:.4f} (code units)")

    sim = OctoTigerSim(
        mesh,
        eos=scenario.eos,
        omega=scenario.omega,
        machine=FUGAKU,
        nodes=4,
    )
    before = diagnostics(mesh)
    print(f"  initial mass {before.mass:.6f}, gas energy {before.energy_gas:.6f}")

    print("\nEvolving 3 steps (hydro RK3 + FMM gravity each step)...")
    for record in sim.run(3):
        print(
            f"  step {record.step}: dt={record.dt:.3e}  "
            f"virtual {record.virtual_seconds * 1e3:.2f} ms/step on "
            f"{sim.config.nodes}x Fugaku nodes -> "
            f"{record.cells_per_second:.3e} cells/s, "
            f"util {record.utilization:.0%}, {record.node_power_w:.0f} W/node"
        )

    after = diagnostics(mesh)
    print("\nConservation over the run:")
    print(f"  mass drift      : {after.mass - before.mass:+.3e}")
    print(f"  momentum drift  : {abs(after.momentum - before.momentum).max():+.3e}")
    print(f"  L_z drift       : {after.angular_momentum_z - before.angular_momentum_z:+.3e}")
    print("\nPer-kernel counters (APEX analog):")
    print(sim.counters.report())


if __name__ == "__main__":
    main()
