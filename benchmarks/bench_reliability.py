"""Reliability study: the paper's hangs and deadlocks, quantified.

The paper reports Octo-Tiger deadlocking "in about 1 out of 20 runs" on
distributed Ookami and hanging at the largest Fugaku node counts — both
unresolved before the allocations ended.  Calibrating a per-message failure
probability to the Ookami observation predicts how the hang probability
scales with the job's message volume.
"""

from repro.distsim import RunConfig, hang_probability_curve
from repro.distsim.reliability import ReliabilityModel, messages_per_step
from repro.machines import FUGAKU, OOKAMI
from repro.scenarios import rotating_star

from benchmarks.conftest import emit, format_series


def run_study():
    level5 = rotating_star(level=5, build_mesh=False).spec
    calibration_messages = messages_per_step(
        level5, RunConfig(machine=OOKAMI, nodes=128)
    ) * 100
    model = ReliabilityModel.calibrate(0.05, calibration_messages)

    rows = []
    for level in (5, 6, 7):
        spec = rotating_star(level=level, build_mesh=False).spec
        for nodes, prob in hang_probability_curve(
            spec, model, FUGAKU, [128, 512, 1024], steps=100
        ):
            attempts = model.expected_attempts(
                messages_per_step(spec, RunConfig(machine=FUGAKU, nodes=nodes)) * 100
            )
            rows.append((f"level{level}", nodes, f"{prob:.3f}", f"{attempts:.2f}"))
    return model, rows


def test_reliability_extrapolation(benchmark):
    model, rows = benchmark(run_study)
    emit(
        "ext_reliability",
        [f"per-message failure probability: {model.per_message_probability:.3e}"]
        + format_series("series  nodes  P(hang/100 steps)  E[attempts]", rows),
    )
    probs = {(r[0], r[1]): float(r[2]) for r in rows}
    # Bigger meshes exchange more messages and hang more.
    assert probs[("level7", 1024)] > probs[("level5", 1024)]
    # The calibration point itself is 'rare' territory.
    assert probs[("level5", 128)] < 0.15
