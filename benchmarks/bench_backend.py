"""Array-backend benchmark: seed kernels vs dispatch vs the JIT backend.

Standalone (not a paper figure):

    PYTHONPATH=src python benchmarks/bench_backend.py [--smoke]

Times the warm batched hydro step (``HydroIntegrator(batched=True)``) under
each host array backend (:mod:`repro.kokkos.backend`): the seed path
(``array_backend=None``), dispatch through ``numpy`` (must be free — same
functions, different call path) and the preferred JIT backend
(``numba`` when installed, its interpreted ``pyjit`` twin otherwise).
Verifies equivalence before timing — numpy-dispatch must be bit-identical,
the JIT backend within the crosscheck tolerance budgets — and persists:

* ``benchmarks/output/backend.txt`` — the human-readable table,
* ``BENCH_backend.json`` at the repo root — machine-readable numbers.

Acceptance gate: with numba installed, the JIT warm step must reach at
least ``GATE_SPEEDUP`` over the seed path on the larger mesh.  Without
numba the ``pyjit`` twin is interpreted NumPy and the gate does not apply
(recorded as ``numba_available: false``).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.crosscheck import (  # noqa: E402
    TOLERANCE_BUDGETS,
    crosscheck_array_backend,
)
from repro.hydro import HydroIntegrator, IdealGasEOS  # noqa: E402
from repro.kokkos.backend import available_backends, jit_backend_name  # noqa: E402
from repro.octree import AmrMesh, Field  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"
#: Minimum JIT-over-seed warm-step speedup demanded when numba is installed.
GATE_SPEEDUP = 1.2


def build_mesh(levels: int, n: int = 8, seed: int = 0):
    """A smooth, rotating-star-like state (same family as bench_hydro_plan)."""
    rng = np.random.default_rng(seed)
    mesh = AmrMesh(n=n, ghost=2, domain_size=1.0)
    for _ in range(levels):
        for key in list(mesh.leaf_keys()):
            mesh.refine(key)
    eos = IdealGasEOS()
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        rho = (
            1.0
            + 0.3 * np.sin(2 * np.pi * x) * np.cos(2 * np.pi * y)
            + 0.05 * rng.random(x.shape)
        )
        p = 1.0 + 0.2 * np.cos(2 * np.pi * z)
        eint = p / (eos.gamma - 1.0)
        vx = 0.1 * np.sin(2 * np.pi * y)
        leaf.subgrid.set_interior(Field.RHO, rho)
        leaf.subgrid.set_interior(Field.SX, rho * vx)
        leaf.subgrid.set_interior(Field.EGAS, eint + 0.5 * rho * vx**2)
        leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
        leaf.subgrid.set_interior(Field.FRAC1, 0.4 * rho)
        leaf.subgrid.set_interior(Field.FRAC2, 0.6 * rho)
    mesh.restrict_all()
    return mesh, eos


def best_of(f, reps: int, trials: int) -> float:
    out = []
    for _ in range(trials):
        gc.collect()
        t0 = time.perf_counter()
        for _ in range(reps):
            f()
        out.append((time.perf_counter() - t0) / reps)
    return min(out)


def verify_equivalence(levels: int, steps: int, jit_name: str):
    """Exact tier for numpy-dispatch, tolerance tier for the JIT backend."""
    mesh, eos = build_mesh(levels)
    exact = crosscheck_array_backend(mesh, "numpy", tier="exact",
                                     steps=steps, eos=eos)
    mesh, eos = build_mesh(levels)
    tol = crosscheck_array_backend(mesh, jit_name, tier="tolerance",
                                   steps=steps, eos=eos)
    return exact, tol


def bench_level(levels: int, reps: int, trials: int, jit_name: str):
    """Warm fixed-dt step time per backend on one mesh size."""
    dt = 1e-4
    times = {}
    for label, backend in (
        ("seed", None), ("numpy", "numpy"), (jit_name, jit_name),
    ):
        mesh, eos = build_mesh(levels)
        integ = HydroIntegrator(mesh, eos, batched=True, array_backend=backend)
        integ.step(dt)  # warm: plan build + (for JIT) kernel compilation
        times[label] = best_of(lambda: integ.step(dt), reps, trials)
        if label == "seed":
            n_leaves, n_cells = len(mesh.leaves()), int(mesh.n_cells())
    return {
        "levels": levels,
        "leaves": n_leaves,
        "cells": n_cells,
        "seed_ms": times["seed"] * 1e3,
        "numpy_ms": times["numpy"] * 1e3,
        "jit_ms": times[jit_name] * 1e3,
        "numpy_overhead": times["numpy"] / times["seed"],
        "jit_speedup": times["seed"] / times[jit_name],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, one trial: equivalence gate + plumbing check for CI",
    )
    args = parser.parse_args(argv)

    jit_name = jit_backend_name()
    numba_available = "numba" in available_backends()

    exact, tol = verify_equivalence(
        levels=1, steps=2 if args.smoke else 3, jit_name=jit_name
    )

    if args.smoke:
        cases = [bench_level(1, reps=1, trials=1, jit_name=jit_name)]
    else:
        cases = [
            bench_level(1, reps=5, trials=8, jit_name=jit_name),
            bench_level(2, reps=2, trials=4, jit_name=jit_name),
        ]

    lines = [
        f"array backends: warm batched hydro step (min-of-trials, ms); "
        f"jit backend = {jit_name}"
        + ("" if numba_available else " (numba not installed)"),
        f"{'mesh':<10} {'leaves':>6} {'seed':>8} {'numpy':>8} {'jit':>8} "
        f"{'np-ovh':>7} {'jit-speedup':>11}",
    ]
    for c in cases:
        lines.append(
            f"level {c['levels']:<4} {c['leaves']:>6} {c['seed_ms']:>8.1f} "
            f"{c['numpy_ms']:>8.1f} {c['jit_ms']:>8.1f} "
            f"{c['numpy_overhead']:>6.2f}x {c['jit_speedup']:>10.2f}x"
        )
    lines.append(
        f"equivalence: numpy exact tier bit-identical over {exact.steps} "
        f"steps; {jit_name} tolerance tier max rel err {tol.max_rel_err:.2e} "
        f"(budgets {min(TOLERANCE_BUDGETS.values()):.0e}.."
        f"{max(TOLERANCE_BUDGETS.values()):.0e})"
    )

    text = "\n".join(lines)
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "backend.txt").write_text(text + "\n")
    payload = {
        "benchmark": "backend",
        "smoke": args.smoke,
        "jit_backend": jit_name,
        "numba_available": numba_available,
        "gate_speedup": GATE_SPEEDUP,
        "exact_tier_steps": exact.steps,
        "tolerance_max_rel_err": tol.max_rel_err,
        "cases": cases,
    }
    (REPO_ROOT / "BENCH_backend.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if numba_available and not args.smoke:
        worst = cases[-1]["jit_speedup"]
        if worst < GATE_SPEEDUP:
            print(
                f"FAIL: numba warm-step speedup {worst:.2f}x < "
                f"{GATE_SPEEDUP}x gate",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
