"""Fig. 10: rotating star level 5 on Ookami vs Supercomputer Fugaku.

Paper finding: Ookami (fully optimized: newer SVE, comm optimization,
multipole splitting) runs slightly ahead up to 4 nodes, ties around 8, and
pulls clearly ahead beyond — the Fugaku runs used an older SVE version and
no multipole splitting.  The scalar Ookami curve sits 2-3x below its SVE
curve throughout.
"""

from repro.distsim import scaling_curve
from repro.distsim.sweep import node_series
from repro.machines import FUGAKU, OOKAMI
from repro.scenarios import rotating_star

from benchmarks.conftest import emit, format_series


def run_curves():
    spec = rotating_star(level=5, build_mesh=False).spec
    nodes = node_series(1, 128)
    return {
        "ookami-sve": scaling_curve(
            spec, OOKAMI, nodes, simd=True, tasks_per_multipole_kernel=16
        ),
        "ookami-scalar": scaling_curve(
            spec, OOKAMI, nodes, simd=False, tasks_per_multipole_kernel=16
        ),
        "fugaku-sve": scaling_curve(
            spec, FUGAKU, nodes, simd=True, simd_maturity=0.7,
            tasks_per_multipole_kernel=1,
        ),
    }


def test_fig10_ookami_vs_fugaku(benchmark):
    curves = benchmark(run_curves)
    rows = []
    for name, curve in curves.items():
        for point in curve:
            rows.append((name, point.nodes, f"{point.cells_per_second:.3e}"))
    from repro.distsim.report import ascii_loglog, curve_to_points

    plot = ascii_loglog(
        {name: curve_to_points(curve) for name, curve in curves.items()}
    )
    emit(
        "fig10_ookami_vs_fugaku",
        format_series("config  nodes  cells/s", rows) + [""] + plot,
    )

    by_nodes = {
        name: {p.nodes: p.cells_per_second for p in curve}
        for name, curve in curves.items()
    }
    # Slightly better on Ookami up to 4 nodes (newer SVE).
    for nodes in (1, 2, 4):
        ratio = by_nodes["ookami-sve"][nodes] / by_nodes["fugaku-sve"][nodes]
        assert 1.0 < ratio < 1.4, (nodes, ratio)
    # Very close at 8 nodes.
    assert by_nodes["ookami-sve"][8] / by_nodes["fugaku-sve"][8] < 1.35
    # Much better at 128 (multipole splitting + interconnect software).
    assert by_nodes["ookami-sve"][128] / by_nodes["fugaku-sve"][128] > 1.3
    # The scalar curve trails the SVE curve by 2-3x where compute dominates;
    # the gap compresses at scale as unvectorised phases take over.
    assert 1.8 < by_nodes["ookami-sve"][1] / by_nodes["ookami-scalar"][1] < 3.0
    assert 1.3 < by_nodes["ookami-sve"][128] / by_nodes["ookami-scalar"][128] < 3.0
