"""Fig. 3: node-level scaling on one Fugaku node, boost vs default clock.

Paper finding: the 2.2 GHz boost mode yields only a *marginal* improvement
over the default 1.8 GHz at the node level.
"""

from repro.distsim import RunConfig, simulate_step
from repro.machines import FUGAKU
from repro.scenarios import rotating_star

from benchmarks.conftest import emit, format_series

CORE_SWEEP = (1, 2, 4, 8, 12, 24, 36, 48)


def run_sweep():
    spec = rotating_star(level=5, build_mesh=False).spec
    rows = []
    for cores in CORE_SWEEP:
        normal = simulate_step(spec, RunConfig(machine=FUGAKU, nodes=1, cores=cores))
        boost = simulate_step(
            spec, RunConfig(machine=FUGAKU, nodes=1, cores=cores, boost=True)
        )
        gain = boost.cells_per_second / normal.cells_per_second - 1.0
        rows.append(
            (cores, f"{normal.cells_per_second:.3e}", f"{boost.cells_per_second:.3e}",
             f"{100 * gain:.1f}%")
        )
    return rows


def test_fig3_boost_mode(benchmark):
    rows = benchmark(run_sweep)
    emit(
        "fig3_boost_mode",
        format_series("cores  cells/s@1.8GHz  cells/s@2.2GHz  boost_gain", rows),
    )
    # The paper's claim: marginal, i.e. well below the 22% clock ratio.
    gains = [float(r[3][:-1]) for r in rows]
    assert all(0.0 < g < 22.0 for g in gains)
