"""Wall-time benchmarks of the real numerical kernels.

Not a paper figure — these keep the physics kernels honest as code evolves:
per-sub-grid hydro flux evaluation, the FMM solve, ghost exchange, and a
full driver step.
"""

import numpy as np
import pytest

from repro.gravity import FmmSolver
from repro.hydro import IdealGasEOS, dudt_subgrid
from repro.octree import Field
from repro.octree.ghost import fill_all_ghosts

from tests.conftest import fill_gaussian, make_uniform_mesh


@pytest.fixture(scope="module")
def hydro_mesh():
    eos = IdealGasEOS()
    mesh = make_uniform_mesh(levels=1)
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        rho = 1.0 + 0.1 * np.sin(np.pi * x)
        eint = np.full_like(rho, 2.5)
        leaf.subgrid.set_interior(Field.RHO, rho)
        leaf.subgrid.set_interior(Field.EGAS, eint)
        leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
    fill_all_ghosts(mesh)
    return mesh, eos


def test_bench_hydro_flux_kernel(benchmark, hydro_mesh):
    mesh, eos = hydro_mesh
    leaf = mesh.leaves()[0]
    dudt, signal = benchmark(dudt_subgrid, leaf.subgrid, leaf.dx, eos)
    assert np.isfinite(dudt).all()
    assert signal > 0


def test_bench_ghost_exchange(benchmark, hydro_mesh):
    mesh, _ = hydro_mesh
    benchmark(fill_all_ghosts, mesh)


def test_bench_fmm_solve_level1(benchmark):
    mesh = make_uniform_mesh(levels=1)
    fill_gaussian(mesh)
    solver = FmmSolver()
    result = benchmark.pedantic(solver.solve, args=(mesh,), rounds=2, iterations=1)
    assert result.stats.p2p_pairs > 0


def test_bench_fmm_solve_level1_cold_plan(benchmark):
    """Every round rebuilds the traversal plan (the post-regrid cost)."""
    mesh = make_uniform_mesh(levels=1)
    fill_gaussian(mesh)
    solver = FmmSolver()

    def cold_solve():
        solver.invalidate_plan()
        return solver.solve(mesh)

    result = benchmark.pedantic(cold_solve, rounds=3, iterations=1)
    assert result.stats.p2p_pairs > 0


def test_bench_fmm_solve_level1_warm_plan(benchmark):
    """Steady-state solve between regrids: the cached plan is reused."""
    mesh = make_uniform_mesh(levels=1)
    fill_gaussian(mesh)
    solver = FmmSolver()
    solver.solve(mesh)  # build the plan outside the measured region
    result = benchmark.pedantic(solver.solve, args=(mesh,), rounds=5, iterations=1)
    assert result.stats.p2p_pairs > 0


def test_bench_driver_multi_step(benchmark):
    """Several gravity-coupled driver steps on a fixed topology — the case
    the plan cache targets (one plan build amortised over all steps)."""
    from repro.core.driver import OctoTigerSim

    eos = IdealGasEOS()

    def make_sim():
        mesh = make_uniform_mesh(levels=1)
        for leaf in mesh.leaves():
            x, y, z = leaf.cell_centers()
            r2 = x**2 + y**2 + z**2
            rho = 0.1 + np.exp(-r2 / 0.05)
            eint = np.full_like(rho, 2.5)
            leaf.subgrid.set_interior(Field.RHO, rho)
            leaf.subgrid.set_interior(Field.EGAS, eint)
            leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
        mesh.restrict_all()
        fill_all_ghosts(mesh)
        return OctoTigerSim(mesh, eos=eos)

    def run_steps():
        return make_sim().run(3, dt=1e-5)

    records = benchmark.pedantic(run_steps, rounds=2, iterations=1)
    assert len(records) == 3


def test_bench_poisson_fft(benchmark):
    from repro.scf.poisson import FftPoissonSolver

    solver = FftPoissonSolver(48, 2.0 / 48)
    rho = np.zeros((48, 48, 48))
    rho[20:28, 20:28, 20:28] = 1.0
    phi = benchmark(solver.solve, rho)
    assert phi.min() < 0
