"""SVII-A's single-node claim, measured for real: the same kernel source
instantiated with the scalar ABI versus a vector ABI.

The paper reports a 2-3x speedup from swapping the SIMD type at compile
time.  Here the swap is the ABI argument of ``vector_map``; because the
pack-generic kernel executes once per *register* rather than once per
element, the wider ABI genuinely does ~width times fewer kernel-body
evaluations — measured below with real wall time, not the cost model.
"""

import numpy as np
import pytest

from repro.simd import get_abi, vector_map

from benchmarks.conftest import emit, format_series

N = 4096


def stencil_kernel(rho, mom, e):
    """A little Octo-Tiger-flavoured flux expression on packs."""
    v = mom / rho
    p = (e - mom * v * 0.5) * (2.0 / 3.0)
    return mom * v + p


def make_inputs():
    rng = np.random.default_rng(0)
    rho = rng.random(N) + 0.5
    mom = rng.random(N) - 0.5
    e = rng.random(N) + 2.0
    return rho, mom, e


@pytest.mark.parametrize("abi_name", ["scalar", "neon128", "avx2", "sve512"])
def test_simd_kernel_correctness_per_abi(benchmark, abi_name):
    rho, mom, e = make_inputs()
    out = np.zeros(N)
    abi = get_abi(abi_name)
    benchmark(vector_map, stencil_kernel, abi, out, rho, mom, e)
    expected = mom * (mom / rho) + (e - mom * (mom / rho) * 0.5) * (2.0 / 3.0)
    np.testing.assert_allclose(out, expected, rtol=1e-12)


def test_simd_measured_speedup_summary(benchmark):
    """Measure the scalar/SVE ratio directly and report the series."""
    import time

    rho, mom, e = make_inputs()
    out = np.zeros(N)
    timings = {}
    for abi_name in ("scalar", "neon128", "avx2", "sve512"):
        abi = get_abi(abi_name)
        start = time.perf_counter()
        for _ in range(3):
            vector_map(stencil_kernel, abi, out, rho, mom, e)
        timings[abi_name] = (time.perf_counter() - start) / 3

    def run_sve():
        vector_map(stencil_kernel, get_abi("sve512"), out, rho, mom, e)

    benchmark(run_sve)
    rows = [
        (name, f"{t * 1e3:.2f} ms", f"{timings['scalar'] / t:.2f}x vs scalar")
        for name, t in timings.items()
    ]
    emit("simd_kernel_speedups", format_series("abi  time  speedup", rows))
    # The vector ABI must show a genuine, substantial measured speedup.
    assert timings["scalar"] / timings["sve512"] > 2.0
