"""Checker overhead: what do the process-backend correctness layers cost?

Standalone (not a paper figure):

    PYTHONPATH=src python benchmarks/bench_checkers.py [--smoke]

Times the warm process-backend RK3 step on the level-1 and level-2
benchmark meshes in three configurations:

* ``off``     — ``verify_plans=False, detect_races=False`` (bare run);
* ``verify``  — static plan verification only (the default shipped
  configuration; the cost lands at plan build, not in the step);
* ``dynamic`` — verification plus full dynamic shm access-event logging
  and per-barrier race scans (``detect_races=True``).

Also reports the one-shot static verification wall time (the price of
refusing an unverified plan) and the access events replayed per step.
Persists ``benchmarks/output/checkers.txt`` and ``BENCH_checkers.json``
at the repo root; the numbers back the default-on decision recorded in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.planverify import verify_process_plan  # noqa: E402
from repro.hydro.process_backend import ProcessHydroExecutor  # noqa: E402

from bench_parallel import best_of, build_mesh  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"

CONFIGS = {
    "off": dict(verify_plans=False, detect_races=False),
    "verify": dict(verify_plans=True, detect_races=False),
    "dynamic": dict(verify_plans=True, detect_races=True),
}


def bench_case(levels: int, nprocs: int, reps: int, trials: int) -> dict:
    dt = 1e-4
    out = {"levels": levels, "nprocs": nprocs, "configs": {}}
    for name, kwargs in CONFIGS.items():
        mesh, eos = build_mesh(levels)
        ex = ProcessHydroExecutor(mesh, eos=eos, nprocs=nprocs, **kwargs)
        try:
            gc.collect()
            t0 = time.perf_counter()
            ex.step(dt)  # cold: fork + arenas + plan (+ verification)
            cold_s = time.perf_counter() - t0
            warm_s = best_of(lambda: ex.step(dt), reps, trials)
            entry = {
                "cold_ms": cold_s * 1e3,
                "warm_ms": warm_s * 1e3,
            }
            if ex.race_detector is not None:
                det = ex.race_detector
                entry["events_seen"] = det.events_seen
                entry["scans"] = det.scans
                entry["findings"] = len(det.findings)
                entry["dropped"] = det.dropped
            if name == "verify":
                t0 = time.perf_counter()
                violations = verify_process_plan(ex)
                entry["verify_ms"] = (time.perf_counter() - t0) * 1e3
                entry["violations"] = len(violations)
        finally:
            ex.close()
        out["configs"][name] = entry
    base = out["configs"]["off"]["warm_ms"]
    for entry in out["configs"].values():
        entry["overhead_vs_off"] = entry["warm_ms"] / base - 1.0
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="level-1 only, one trial: the CI plumbing check",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        cases = [bench_case(1, nprocs=2, reps=1, trials=1)]
    else:
        cases = [
            bench_case(1, nprocs=2, reps=3, trials=4),
            bench_case(2, nprocs=2, reps=1, trials=3),
        ]

    lines = [
        "process-backend checker overhead: warm RK3 step, min-of-trials",
        f"{'mesh':<10} {'config':>8} {'warm':>9} {'overhead':>9} "
        f"{'verify':>8} {'events/scan':>12}",
    ]
    ok = True
    for c in cases:
        for name, e in c["configs"].items():
            verify = f"{e['verify_ms']:.1f}ms" if "verify_ms" in e else "-"
            events = (
                f"{e['events_seen']}/{e['scans']}" if "events_seen" in e
                else "-"
            )
            lines.append(
                f"level {c['levels']:<4} {name:>8} {e['warm_ms']:>8.1f} "
                f"{e['overhead_vs_off']:>+8.1%} {verify:>8} {events:>12}"
            )
            ok &= e.get("findings", 0) == 0 and e.get("violations", 0) == 0

    lines.append(
        f"clean-run invariant (zero findings, zero violations): "
        f"{'PASS' if ok else 'FAIL'}"
    )
    text = "\n".join(lines)
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "checkers.txt").write_text(text + "\n")
    (REPO_ROOT / "BENCH_checkers.json").write_text(json.dumps(
        {"benchmark": "checkers", "smoke": args.smoke, "cases": cases},
        indent=2,
    ) + "\n")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
