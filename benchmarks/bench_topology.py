"""Topology ablation: Tofu-D torus vs InfiniBand fat tree (Fig. 10's
'further investigations are needed').

Re-runs the Ookami/Fugaku comparison with topology-resolved latencies: the
torus' diameter grows with the allocation while the fat tree's hop count
saturates, widening Ookami's advantage at scale beyond what the flat-latency
model shows.
"""

from dataclasses import replace

from repro.distsim import RunConfig, simulate_step
from repro.machines import FUGAKU, OOKAMI, FatTreeTopology, TorusTopology
from repro.machines.topology import effective_interconnect
from repro.scenarios import rotating_star

from benchmarks.conftest import emit, format_series

NODE_COUNTS = (8, 64, 512, 4096)


def run_study():
    spec_small = rotating_star(level=5, build_mesh=False).spec
    spec = spec_small.with_subgrids(spec_small.n_subgrids * 32)  # keep work/node sane
    torus = TorusTopology()
    tree = FatTreeTopology()
    rows = []
    for nodes in NODE_COUNTS:
        fugaku_t = replace(
            FUGAKU,
            interconnect=effective_interconnect(FUGAKU.interconnect, torus, nodes),
        )
        ookami_t = replace(
            OOKAMI,
            interconnect=effective_interconnect(OOKAMI.interconnect, tree, nodes),
        )
        f = simulate_step(spec, RunConfig(machine=fugaku_t, nodes=nodes))
        o = simulate_step(spec, RunConfig(machine=ookami_t, nodes=nodes))
        rows.append(
            (nodes,
             f"{fugaku_t.interconnect.latency_us:.2f}us",
             f"{ookami_t.interconnect.latency_us:.2f}us",
             f"{f.cells_per_second:.3e}",
             f"{o.cells_per_second:.3e}",
             f"{o.cells_per_second / f.cells_per_second:.3f}")
        )
    return rows


def test_topology_ablation(benchmark):
    rows = benchmark(run_study)
    emit(
        "ext_topology",
        format_series(
            "nodes  tofu_lat  ib_lat  fugaku_cells/s  ookami_cells/s  ookami/fugaku",
            rows,
        ),
    )
    ratios = {r[0]: float(r[5]) for r in rows}
    # The torus' growing diameter erodes Fugaku's standing as the job grows.
    assert ratios[4096] > ratios[8]
