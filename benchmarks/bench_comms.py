"""Message-coalescing benchmark: bundled vs per-face ghost exchange.

Standalone (not a paper figure):

    PYTHONPATH=src python benchmarks/bench_comms.py [--smoke]

Measures the locality-aware bundle layer (``repro.comms``, see
``docs/comms.md``) through the functional distributed driver: the same
warm RK3 step at level 2 on 4 localities, coalescing on vs off, plus the
per-step payload message counts against the closed-form neighbor-pair
bound.  Also runs the discrete-event ablation (± coalescing x ± the
SVII-B local-communication optimization) across node counts — the
simulated analogue of the paper's with/without-optimization scaling
figure.  Persists:

* ``benchmarks/output/comms.txt`` — the human-readable tables,
* ``BENCH_comms.json`` at the repo root — machine-readable numbers.

Drift gate (exit 1 on violation): after the timed steps the coalesced
and per-face meshes must agree **bit-for-bit** (``np.array_equal``) —
coalescing re-routes bytes, it must never change them.

Timing methodology: minimum over several single-step trials,
``gc.collect()`` before each.  Each step is also decomposed into
*in-kernel time* (the per-leaf hydro kernels, identical arithmetic on
both paths) and *runtime/exchange overhead* (everything else: task-graph
machinery, pack/unpack or per-face fills, transport timers) by timing the
kernel through the driver's module global — the overhead column is the
cost coalescing actually attacks, and its speedup is the headline number.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import repro.core.distributed as dist  # noqa: E402
from repro.comms import neighbor_locality_pairs  # noqa: E402
from repro.core.distributed import DistributedHydroDriver  # noqa: E402
from repro.distsim import RunConfig  # noqa: E402
from repro.distsim.sweep import comm_ablation_curves  # noqa: E402
from repro.hydro import IdealGasEOS  # noqa: E402
from repro.hydro.integrator import _RK3_STAGES  # noqa: E402
from repro.machines import FUGAKU  # noqa: E402
from repro.octree import AmrMesh, Field  # noqa: E402
from repro.scenarios.spec import ScenarioSpec  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"
NODES = 4
DT = 1e-4


def build_mesh(levels: int, n: int = 8, seed: int = 0):
    """A smooth state on a uniformly refined mesh (level 2: 64 leaves)."""
    rng = np.random.default_rng(seed)
    mesh = AmrMesh(n=n, ghost=2, domain_size=1.0)
    for _ in range(levels):
        for key in list(mesh.leaf_keys()):
            mesh.refine(key)
    eos = IdealGasEOS()
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        rho = 1.0 + 0.3 * np.sin(2 * np.pi * x) * np.cos(2 * np.pi * y)
        rho += 0.05 * rng.random(x.shape)
        p = 1.0 + 0.2 * np.cos(2 * np.pi * z)
        eint = p / (eos.gamma - 1.0)
        vx = 0.1 * np.sin(2 * np.pi * y)
        leaf.subgrid.set_interior(Field.RHO, rho)
        leaf.subgrid.set_interior(Field.SX, rho * vx)
        leaf.subgrid.set_interior(Field.EGAS, eint + 0.5 * rho * vx**2)
        leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
        leaf.subgrid.set_interior(Field.FRAC1, 0.4 * rho)
        leaf.subgrid.set_interior(Field.FRAC2, 0.6 * rho)
    mesh.restrict_all()
    return mesh, eos


class _KernelTimer:
    """Accumulates time spent inside the per-leaf hydro kernel.

    The driver resolves the kernel through its module global, so rebinding
    ``dist.dudt_subgrid`` times every kernel invocation without touching
    the driver.  This decomposes a step into *kernel time* (identical
    arithmetic either way) and *runtime/exchange overhead* (task graph,
    transport, pack/unpack or per-face fills) — the part coalescing
    actually targets: fewer engine events and transport timers.
    """

    def __init__(self) -> None:
        self.real = dist.dudt_subgrid
        self.acc = 0.0

    def __enter__(self) -> "_KernelTimer":
        def timed(*args, **kwargs):
            t0 = time.perf_counter()
            out = self.real(*args, **kwargs)
            self.acc += time.perf_counter() - t0
            return out

        dist.dudt_subgrid = timed
        return self

    def __exit__(self, *exc) -> None:
        dist.dudt_subgrid = self.real


def _timed_steps(driver, trials: int):
    """Min total step time and min runtime overhead over ``trials`` steps."""
    best_total = best_overhead = float("inf")
    with _KernelTimer() as kt:
        for _ in range(trials):
            gc.collect()
            kt.acc = 0.0
            t0 = time.perf_counter()
            driver.step(DT)
            total = time.perf_counter() - t0
            best_total = min(best_total, total)
            best_overhead = min(best_overhead, total - kt.acc)
    return best_total, best_overhead


def bench_driver(levels: int, trials: int):
    """Warm distributed step, coalescing on vs off, same mesh and dt."""
    mesh_on, eos = build_mesh(levels)
    mesh_off, _ = build_mesh(levels)
    on = DistributedHydroDriver(
        mesh_on, eos, config=RunConfig(machine=FUGAKU, nodes=NODES, coalesce=True)
    )
    off = DistributedHydroDriver(
        mesh_off, eos,
        config=RunConfig(machine=FUGAKU, nodes=NODES, coalesce=False),
    )

    gc.collect()
    t0 = time.perf_counter()
    res_on = on.step(DT)  # arena adoption + bundle-plan build + first step
    cold_s = time.perf_counter() - t0
    res_off = off.step(DT)

    warm_on, over_on = _timed_steps(on, trials)
    warm_off, over_off = _timed_steps(off, trials)

    drift = 0.0
    for key in mesh_on.leaf_keys():
        a = mesh_on.nodes[key].subgrid.data
        b = mesh_off.nodes[key].subgrid.data
        if not np.array_equal(a, b):
            drift = max(drift, float(np.abs(a - b).max()))

    pairs = neighbor_locality_pairs(mesh_on)
    return {
        "levels": levels,
        "leaves": len(mesh_on.leaves()),
        "localities": NODES,
        "cold_coalesced_ms": cold_s * 1e3,
        "warm_coalesced_ms": warm_on * 1e3,
        "warm_per_face_ms": warm_off * 1e3,
        "warm_speedup": warm_off / warm_on,
        "overhead_coalesced_ms": over_on * 1e3,
        "overhead_per_face_ms": over_off * 1e3,
        "overhead_speedup": over_off / over_on,
        "payload_messages_coalesced": res_on.payload_messages,
        "payload_messages_per_face": res_off.payload_messages,
        "closed_form_messages": len(_RK3_STAGES) * len(pairs),
        "neighbor_pairs": len(pairs),
        "drift": drift,
    }


def bench_ablation(n_subgrids: int, nodes):
    """The DES ablation: makespan and message counts per variant."""
    spec = ScenarioSpec(name="bench", n_subgrids=n_subgrids, max_level=2)
    curves = comm_ablation_curves(spec, FUGAKU, nodes)
    return {
        "n_subgrids": n_subgrids,
        "nodes": list(nodes),
        "variants": {
            label: {
                "makespan_ms": [r.makespan_s * 1e3 for r in curve],
                "payload_messages": [r.payload_messages for r in curve],
            }
            for label, curve in curves.items()
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, one trial: drift gate + plumbing check for CI",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        driver_cases = [bench_driver(1, trials=1)]
        ablation = bench_ablation(64, [1, 4])
    else:
        driver_cases = [
            bench_driver(1, trials=12),
            bench_driver(2, trials=12),
        ]
        ablation = bench_ablation(512, [1, 4, 16, 64])

    lines = [
        "comms: coalesced (one bundle per neighbor locality per stage) vs "
        "per-face ghost exchange",
        f"functional driver, {NODES} localities (min-of-trials, ms per RK3 "
        "step)",
        "overhead = step minus in-kernel time: the runtime/exchange cost "
        "coalescing targets",
        f"{'mesh':<10} {'leaves':>6} {'cold':>8} {'warm':>8} {'per-face':>9} "
        f"{'speedup':>8} {'ovh':>7} {'ovh-pf':>7} {'ovh-spd':>8} "
        f"{'msgs':>5} {'faces':>6}",
    ]
    for c in driver_cases:
        lines.append(
            f"level {c['levels']:<4} {c['leaves']:>6} "
            f"{c['cold_coalesced_ms']:>8.1f} {c['warm_coalesced_ms']:>8.1f} "
            f"{c['warm_per_face_ms']:>9.1f} {c['warm_speedup']:>7.2f}x "
            f"{c['overhead_coalesced_ms']:>7.1f} "
            f"{c['overhead_per_face_ms']:>7.1f} "
            f"{c['overhead_speedup']:>7.2f}x "
            f"{c['payload_messages_coalesced']:>5} "
            f"{c['payload_messages_per_face']:>6}"
        )
    for c in driver_cases:
        lines.append(
            f"drift level {c['levels']}: max|on - off| = {c['drift']:.3e}; "
            f"messages {c['payload_messages_coalesced']} == closed form "
            f"{c['closed_form_messages']}"
        )
    lines.append("")
    lines.append(
        f"DES ablation ({ablation['n_subgrids']} sub-grids, makespan ms "
        f"across nodes {ablation['nodes']}):"
    )
    for label, data in ablation["variants"].items():
        spans = " ".join(f"{ms:8.3f}" for ms in data["makespan_ms"])
        lines.append(f"  {label:<20} {spans}")

    text = "\n".join(lines)
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "comms.txt").write_text(text + "\n")
    payload = {
        "benchmark": "comms",
        "smoke": args.smoke,
        "drift_tol": 0.0,
        "drift": {
            f"level {c['levels']}": c["drift"] for c in driver_cases
        },
        "cases": driver_cases,
        "ablation": ablation,
    }
    (REPO_ROOT / "BENCH_comms.json").write_text(json.dumps(payload, indent=2) + "\n")

    status = 0
    for c in driver_cases:
        if c["drift"] != 0.0:
            print(
                f"FAIL: level {c['levels']} coalesced vs per-face drift "
                f"{c['drift']:.3e} != 0 (coalescing must be bit-identical)",
                file=sys.stderr,
            )
            status = 1
        if c["payload_messages_coalesced"] != c["closed_form_messages"]:
            print(
                f"FAIL: level {c['levels']} payload messages "
                f"{c['payload_messages_coalesced']} != closed form "
                f"{c['closed_form_messages']}",
                file=sys.stderr,
            )
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
