"""Extension studies beyond the paper's evaluation.

* **Energy to solution** — Table II extended across machines: joules per
  evolved cell for the DWD workload on Fugaku vs Perlmutter (CPU/GPU).
* **Weak scaling** — constant work per node, the companion to Fig. 6.
* **Partition quality** — SFC versus a naive round-robin distribution:
  the remote-exchange fraction that drives the communication model.
"""

import pytest

from repro.distsim import RunConfig, simulate_step
from repro.distsim.sweep import node_series, weak_scaling_curve
from repro.machines import FUGAKU, PERLMUTTER
from repro.octree.partition import round_robin_partition, partition_stats, sfc_partition
from repro.scenarios import dwd_scenario, rotating_star

from benchmarks.conftest import emit, format_series
from tests.conftest import make_uniform_mesh


def test_energy_to_solution(benchmark):
    spec = dwd_scenario(level=12, build_mesh=False).spec

    def run():
        rows = []
        for label, machine, gpu, simd in (
            ("Fugaku (SVE)", FUGAKU, False, True),
            ("Perlmutter CPU", PERLMUTTER, False, False),
            ("Perlmutter 4xA100", PERLMUTTER, True, False),
        ):
            r = simulate_step(spec, RunConfig(machine=machine, nodes=8, use_gpus=gpu, simd=simd))
            joules_per_cell = r.job_power_w * r.total_s / (spec.n_cells / 8)
            rows.append((label, f"{r.cells_per_second:.3e}",
                         f"{r.job_power_w:.0f}", f"{joules_per_cell:.3e}"))
        return rows

    rows = benchmark(run)
    emit("ext_energy_to_solution",
         format_series("config  cells/s  watts  J/cell/node-step", rows))
    # GPUs win on energy per cell despite the higher node power.
    j = {r[0]: float(r[3]) for r in rows}
    assert j["Perlmutter 4xA100"] < j["Perlmutter CPU"]


def test_weak_scaling(benchmark):
    spec = rotating_star(level=5, build_mesh=False).spec

    def run():
        return weak_scaling_curve(
            spec, FUGAKU, node_series(1, 1024), subgrids_per_node=4882
        )

    curve = benchmark(run)
    rows = [
        (p.nodes, f"{p.total_s * 1e3:.3f} ms", f"{p.utilization:.2f}")
        for p in curve
    ]
    emit("ext_weak_scaling", format_series("nodes  time/step  util", rows))
    # Weak-scaling degradation stays bounded: 1024 nodes cost < 2x the
    # single-node step time for constant work per node.
    assert curve[-1].total_s < 2.0 * curve[0].total_s


def test_partition_quality(benchmark):
    mesh = make_uniform_mesh(levels=2)

    def run():
        sfc_partition(mesh, 8)
        sfc = partition_stats(mesh, 8)
        round_robin_partition(mesh, 8)
        naive = partition_stats(mesh, 8)
        return sfc, naive

    sfc, naive = benchmark(run)
    rows = [
        ("sfc", f"{sfc.remote_fraction:.3f}", f"{sfc.imbalance:.3f}"),
        ("round-robin", f"{naive.remote_fraction:.3f}", f"{naive.imbalance:.3f}"),
    ]
    emit("ext_partition_quality",
         format_series("partition  remote_fraction  imbalance", rows))
    # The SFC keeps most exchanges on-node; round-robin scatters them.
    assert sfc.remote_fraction < 0.75 * naive.remote_fraction
