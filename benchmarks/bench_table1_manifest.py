"""Table I: the software-stack manifest Octo-Tiger was built with."""

from repro.machines import format_manifest, software_manifest

from benchmarks.conftest import emit


def test_table1_software_manifest(benchmark):
    table = benchmark(format_manifest)
    emit("table1_manifest", table.splitlines())
    # Integrity: both columns resolve for every component.
    fugaku = software_manifest("Fugaku")
    ookami = software_manifest("Ookami")
    assert set(fugaku) == set(ookami)
    assert fugaku["hpx"] != ookami["hpx"]  # the paper used different HPX builds
