"""Figs. 5a/5b: the DWD scenario on Perlmutter (GPU and CPU-only) vs Fugaku.

Paper findings: level-12 DWD (5 150 720 sub-grids) sized to fit one 28 GB
Fugaku node; Perlmutter with 4x A100 is best; dropping the GPUs costs about
two orders of magnitude; Fugaku's first (pre-SVE) attempt lands close to,
but below, the CPU-only Perlmutter run.
"""

from repro.distsim import RunConfig, scaling_curve, simulate_step, speedup_series
from repro.distsim.sweep import min_nodes_for, node_series
from repro.machines import FUGAKU, PERLMUTTER
from repro.scenarios import dwd_scenario

from benchmarks.conftest import emit, format_series

CONFIGS = (
    ("Perlmutter 4xA100", PERLMUTTER, True, False),
    ("Perlmutter CPU-only", PERLMUTTER, False, False),
    ("Fugaku (pre-SVE)", FUGAKU, False, False),
)


def run_curves():
    spec = dwd_scenario(level=12, build_mesh=False).spec
    nodes = node_series(1, 128)  # the paper was limited to 128 nodes
    return {
        label: scaling_curve(spec, machine, nodes, use_gpus=gpu, simd=simd)
        for label, machine, gpu, simd in CONFIGS
    }


def test_fig5a_subgrids_per_second(benchmark):
    curves = benchmark(run_curves)
    rows = []
    for label, curve in curves.items():
        for point in curve:
            rows.append((label, point.nodes, f"{point.subgrids_per_second:.3e}"))
    emit("fig5a_dwd_subgrids_per_s", format_series("config  nodes  subgrids/s", rows))

    one_node = {label: curve[0] for label, curve in curves.items()}
    gpu = one_node["Perlmutter 4xA100"].cells_per_second
    cpu = one_node["Perlmutter CPU-only"].cells_per_second
    fugaku = one_node["Fugaku (pre-SVE)"].cells_per_second
    assert gpu / cpu > 40  # ~two orders of magnitude
    assert 0.4 < fugaku / cpu < 1.0  # close, slightly below

    # The scenario really fits one Fugaku node (the paper chose it so).
    spec = dwd_scenario(level=12, build_mesh=False).spec
    assert min_nodes_for(spec, FUGAKU) == 1


def test_fig5b_speedups(benchmark):
    curves = benchmark(run_curves)
    rows = []
    for label, curve in curves.items():
        for point, s in zip(curve, speedup_series(curve)):
            rows.append((label, point.nodes, f"{s:.2f}"))
    emit("fig5b_dwd_speedup", format_series("config  nodes  S", rows))
    # CPU configurations scale better than the GPU one (more work per
    # device-second left on the table), mirroring the paper's 5b.
    cpu_s = speedup_series(curves["Perlmutter CPU-only"])[-1]
    gpu_s = speedup_series(curves["Perlmutter 4xA100"])[-1]
    assert cpu_s > gpu_s
