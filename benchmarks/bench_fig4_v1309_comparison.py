"""Figs. 4a/4b: the v1309 scenario on Summit, Piz Daint and Fugaku.

Paper findings: each machine starts at the smallest node count whose memory
fits the 17 M sub-grid scenario (Summit 1, Piz Daint 4, Fugaku 16); Summit
(6x V100/node) is fastest, Piz Daint second, Fugaku close behind Piz Daint.

The paper's reported starting points (4 and 16) exceed our pure
capacity-model minima (2 and 4) — the real runs were also constrained by
GPU memory and queue granularity; we use the paper's values.
"""

from repro.distsim import RunConfig, scaling_curve, simulate_step, speedup_series
from repro.distsim.sweep import node_series
from repro.machines import FUGAKU, PIZ_DAINT, SUMMIT
from repro.scenarios import v1309_scenario

from benchmarks.conftest import emit, format_series

#: (machine, paper's starting node count, gpu?) per the paper's Fig. 4.
CONFIGS = (
    (SUMMIT, 1, True),
    (PIZ_DAINT, 4, True),
    (FUGAKU, 16, False),
)


def run_curves():
    spec = v1309_scenario(level=11, build_mesh=False).spec
    curves = {}
    for machine, start, gpu in CONFIGS:
        nodes = node_series(start, start * 16)
        curves[machine.name] = scaling_curve(
            spec, machine, nodes, use_gpus=gpu, simd=True
        )
    return curves


def test_fig4a_processed_subgrids_per_second(benchmark):
    curves = benchmark(run_curves)
    rows = []
    for name, curve in curves.items():
        for point in curve:
            rows.append((name, point.nodes, f"{point.subgrids_per_second:.3e}"))
    from repro.distsim.report import ascii_loglog

    plot = ascii_loglog(
        {
            name: [(p.nodes, p.subgrids_per_second) for p in curve]
            for name, curve in curves.items()
        },
        y_label="subgrids/s",
    )
    emit(
        "fig4a_v1309_subgrids_per_s",
        format_series("machine  nodes  subgrids/s", rows) + [""] + plot,
    )

    # Orderings at a common node count (16).
    at16 = {
        name: next(p for p in curve if p.nodes == 16)
        for name, curve in curves.items()
        if any(p.nodes == 16 for p in curve)
    }
    assert (
        at16["Summit"].cells_per_second
        > at16["Piz Daint"].cells_per_second
        > at16["Fugaku"].cells_per_second
    )
    # "Fugaku close to Piz Daint": within one order of magnitude.
    assert at16["Piz Daint"].cells_per_second / at16["Fugaku"].cells_per_second < 10


def test_fig4b_speedups(benchmark):
    curves = benchmark(run_curves)
    rows = []
    for name, curve in curves.items():
        for point, s in zip(curve, speedup_series(curve)):
            rows.append((name, point.nodes, f"{s:.2f}"))
    emit("fig4b_v1309_speedup", format_series("machine  nodes  S", rows))
    for curve in curves.values():
        s = speedup_series(curve)
        assert s[0] == 1.0
        assert all(b > a for a, b in zip(s, s[1:]))
