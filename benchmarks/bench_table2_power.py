"""Table II: average power consumption on Fugaku (PowerAPI analog).

Paper values (total job power, W) for the rotating-star runs, e.g. level 5:
373.94 @4 nodes, 1145.69 @16, 1969.14 @32, 11908.93 @128, 15228.07 @256;
level 6: 111261.36 @1024; level 7: 55310.55 @512, 111235.41 @1024.
"""

from repro.distsim import RunConfig, simulate_step
from repro.machines import FUGAKU
from repro.scenarios import rotating_star

from benchmarks.conftest import emit, format_series

NODE_COLUMNS = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Paper Table II reference points (level, nodes) -> watts.
PAPER_VALUES = {
    (5, 4): 373.94,
    (5, 16): 1145.69,
    (5, 32): 1969.14,
    (5, 128): 11908.93,
    (5, 256): 15228.07,
    (6, 128): 8659.86,
    (6, 256): 19274.0,
    (6, 1024): 111261.36,
    (7, 512): 55310.55,
    (7, 1024): 111235.41,
}


def run_table():
    table = {}
    for level in (5, 6, 7):
        spec = rotating_star(level=level, build_mesh=False).spec
        for nodes in NODE_COLUMNS:
            result = simulate_step(spec, RunConfig(machine=FUGAKU, nodes=nodes))
            table[(level, nodes)] = result.job_power_w
    return table


def test_table2_power_consumption(benchmark):
    table = benchmark(run_table)
    rows = []
    for level in (5, 6, 7):
        row = [f"level{level}"]
        for nodes in NODE_COLUMNS:
            row.append(f"{table[(level, nodes)]:.0f}")
        rows.append(tuple(row))
    header = "series  " + "  ".join(str(n) for n in NODE_COLUMNS)
    emit("table2_power", format_series(header, rows))

    # Modeled total power within a factor ~2.5 of every paper measurement
    # (same order of magnitude and the same node-count trend).
    for (level, nodes), paper_w in PAPER_VALUES.items():
        ours = table[(level, nodes)]
        assert 0.4 < ours / paper_w < 2.5, ((level, nodes), ours, paper_w)

    # Per-node power never leaves the A64FX envelope.
    for (level, nodes), watts in table.items():
        assert 30.0 < watts / nodes < 120.0
