"""Fig. 8: the hydro local-communication optimization on/off (Ookami).

Paper finding: direct memory access for same-locality neighbours (guarded
by promise/future pairs) helps at 1-4 nodes, breaks even around 8, and is
slightly *worse* beyond — the promise/future bookkeeping on every face
outweighs the vanishing local-transfer savings.
"""

from repro.distsim import scaling_curve
from repro.distsim.sweep import node_series
from repro.machines import OOKAMI
from repro.scenarios import rotating_star

from benchmarks.conftest import emit, format_series


def run_curves():
    spec = rotating_star(level=5, build_mesh=False).spec
    nodes = node_series(1, 128)
    return {
        "optimized": scaling_curve(spec, OOKAMI, nodes, comm_local_optimization=True),
        "baseline": scaling_curve(spec, OOKAMI, nodes, comm_local_optimization=False),
    }


def test_fig8_comm_optimization(benchmark):
    curves = benchmark(run_curves)
    rows = []
    ratios = {}
    for opt, base in zip(curves["optimized"], curves["baseline"]):
        ratio = opt.cells_per_second / base.cells_per_second
        ratios[opt.nodes] = ratio
        rows.append(
            (opt.nodes, f"{opt.cells_per_second:.3e}",
             f"{base.cells_per_second:.3e}", f"{ratio:.3f}")
        )
    emit("fig8_comm_opt", format_series("nodes  optimized  baseline  ratio", rows))

    assert ratios[1] > 1.01  # clear benefit on one node
    assert ratios[2] > 1.0
    assert abs(ratios[8] - 1.0) < 0.05  # break-even around 8 nodes
    assert ratios[128] < 1.0  # slightly worse at scale
