"""Ablations beyond the paper's figures (DESIGN.md section 4).

* FMM expansion order: accuracy vs cost (order 1/2/3),
* sub-grid size N: task granularity vs overhead,
* GPU kernel aggregation: launches fused per device launch (paper ref. [9]).
"""

import numpy as np
import pytest

from repro.distsim import RunConfig, simulate_step
from repro.gravity import FmmSolver, direct_sum
from repro.machines import PERLMUTTER, FUGAKU
from repro.scenarios import rotating_star
from repro.scenarios.spec import ScenarioSpec

from benchmarks.conftest import emit, format_series
from tests.conftest import fill_gaussian, make_uniform_mesh


def test_ablation_fmm_order(benchmark):
    """Accuracy of the far field by expansion order, against direct sums."""
    mesh = make_uniform_mesh(levels=2)
    fill_gaussian(mesh)
    phi_d, acc_d = direct_sum(mesh)
    den = sum(np.sum(acc_d[k] ** 2) for k in acc_d)

    def solve_all():
        out = {}
        for order in (1, 2, 3):
            result = FmmSolver(order=order).solve(mesh)
            num = sum(np.sum((result.accel[k] - acc_d[k]) ** 2) for k in acc_d)
            out[order] = float(np.sqrt(num / den))
        return out

    errors = benchmark.pedantic(solve_all, rounds=1, iterations=1)
    rows = [(order, f"{err:.3e}") for order, err in errors.items()]
    emit("ablation_fmm_order", format_series("order  accel_rel_error", rows))
    assert errors[3] < 1e-2
    assert errors[2] <= errors[1] * 1.05


def test_ablation_subgrid_size(benchmark):
    """Performance-model sensitivity to the sub-grid edge length N.

    Total cells held constant: smaller sub-grids mean more tasks and more
    ghost overhead per cell; larger ones coarsen the parallelism.
    """
    cells = 2_500_000

    def run():
        rows = []
        for n in (4, 8, 16):
            spec = ScenarioSpec(
                name=f"n{n}",
                n_subgrids=cells // n**3,
                max_level=5,
                subgrid_n=n,
            )
            r = simulate_step(spec, RunConfig(machine=FUGAKU, nodes=64))
            rows.append((n, f"{r.cells_per_second:.3e}", f"{r.comm_s:.2e}"))
        return rows

    rows = benchmark(run)
    emit("ablation_subgrid_size", format_series("N  cells/s@64nodes  comm_s", rows))
    # N = 8 (Octo-Tiger's choice) should beat tiny sub-grids.
    rates = {row[0]: float(row[1]) for row in rows}
    assert rates[8] > rates[4]


def test_ablation_gpu_aggregation(benchmark):
    """Work aggregation (paper ref. [9]): fusing small kernel launches."""
    spec = rotating_star(level=6, build_mesh=False).spec

    def run():
        rows = []
        for agg in (1, 4, 16, 64):
            r = simulate_step(
                spec,
                RunConfig(machine=PERLMUTTER, nodes=16, use_gpus=True, gpu_aggregation=agg),
            )
            rows.append((agg, f"{r.cells_per_second:.3e}"))
        return rows

    rows = benchmark(run)
    emit("ablation_gpu_aggregation", format_series("aggregation  cells/s", rows))
    rates = [float(r[1]) for r in rows]
    # More aggregation -> fewer launch latencies -> faster, saturating.
    assert rates[-1] >= rates[0]
    assert rates[1] >= rates[0]
