"""Batched hydro-plan benchmark: cold / warm / multi-step vs the reference.

Standalone (not a paper figure):

    PYTHONPATH=src python benchmarks/bench_hydro_plan.py [--smoke]

Measures the cached batched hydro step (``HydroIntegrator(batched=True)``,
see ``docs/hydro_plan.md``) against the retained per-leaf reference path on
multi-leaf meshes, verifies the two paths agree (the batched step is
designed to be bit-identical; the acceptance gate is 1e-13), and persists:

* ``benchmarks/output/hydro_plan.txt`` — the human-readable table,
* ``BENCH_hydro.json`` at the repo root — machine-readable numbers.

Exits non-zero if the batched and reference states drift apart.

Timing methodology: minimum over several trials of the mean of a few
repetitions, with a ``gc.collect()`` before each trial — single-core
containers have noisy wall clocks and the minimum is the best estimator of
the achievable time.  Two step timings are reported per mesh: ``fixed-dt``
(the RK3 step alone) and ``full`` (including the CFL timestep computation,
which the batched path serves from the folded-in signal reduction).
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.hydro import HydroIntegrator, IdealGasEOS  # noqa: E402
from repro.octree import AmrMesh, Field  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"
DRIFT_TOL = 1e-13


def build_mesh(levels: int, n: int = 8, refine_keys=(), seed: int = 0):
    """A smooth, rotating-star-like state on a (possibly refined) mesh."""
    rng = np.random.default_rng(seed)
    mesh = AmrMesh(n=n, ghost=2, domain_size=1.0)
    for _ in range(levels):
        for key in list(mesh.leaf_keys()):
            mesh.refine(key)
    for k in refine_keys:
        keys = sorted(mesh.leaf_keys())
        mesh.refine(keys[k % len(keys)])
    eos = IdealGasEOS()
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        rho = (
            1.0
            + 0.3 * np.sin(2 * np.pi * x) * np.cos(2 * np.pi * y)
            + 0.05 * rng.random(x.shape)
        )
        p = 1.0 + 0.2 * np.cos(2 * np.pi * z)
        eint = p / (eos.gamma - 1.0)
        vx = 0.1 * np.sin(2 * np.pi * y)
        leaf.subgrid.set_interior(Field.RHO, rho)
        leaf.subgrid.set_interior(Field.SX, rho * vx)
        leaf.subgrid.set_interior(Field.EGAS, eint + 0.5 * rho * vx**2)
        leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
        leaf.subgrid.set_interior(Field.FRAC1, 0.4 * rho)
        leaf.subgrid.set_interior(Field.FRAC2, 0.6 * rho)
    mesh.restrict_all()
    return mesh, eos


def best_of(f, reps: int, trials: int) -> float:
    out = []
    for _ in range(trials):
        gc.collect()
        t0 = time.perf_counter()
        for _ in range(reps):
            f()
        out.append((time.perf_counter() - t0) / reps)
    return min(out)


def check_drift(levels: int, steps: int, refine_keys=()) -> float:
    """Evolve batched and reference side by side; return the max |diff|."""
    mesh_a, eos = build_mesh(levels, refine_keys=refine_keys)
    mesh_b, _ = build_mesh(levels, refine_keys=refine_keys)
    a = HydroIntegrator(mesh_a, eos, batched=True)
    b = HydroIntegrator(mesh_b, eos, batched=False)
    for _ in range(steps):
        dt_a = a.step()
        dt_b = b.step()
        if dt_a != dt_b:
            return float("inf")
    return max(
        float(np.max(np.abs(mesh_a.nodes[k].subgrid.data - mesh_b.nodes[k].subgrid.data)))
        for k in mesh_a.nodes
    )


def bench_level(levels: int, reps: int, trials: int, refine_keys=()):
    mesh_a, eos = build_mesh(levels, refine_keys=refine_keys)
    mesh_b, _ = build_mesh(levels, refine_keys=refine_keys)
    batched = HydroIntegrator(mesh_a, eos, batched=True)
    reference = HydroIntegrator(mesh_b, eos, batched=False)
    n_leaves = len(mesh_a.leaves())
    dt = 1e-4

    # Cold: plan build + ghost-index build + first batched step.
    gc.collect()
    t0 = time.perf_counter()
    batched.step(dt)
    cold_s = time.perf_counter() - t0
    reference.step(dt)  # warm the reference path's caches too

    warm_batched = best_of(lambda: batched.step(dt), reps, trials)
    warm_reference = best_of(lambda: reference.step(dt), reps, trials)
    # Full step: dt recomputed every step.  The batched path serves
    # global_timestep from the signal reduction folded into the previous
    # step; the reference re-walks every leaf's primitives.
    full_batched = best_of(lambda: batched.step(), reps, trials)
    full_reference = best_of(lambda: reference.step(), reps, trials)

    return {
        "levels": levels,
        "leaves": n_leaves,
        "cells": int(mesh_a.n_cells()),
        "cold_batched_ms": cold_s * 1e3,
        "warm_batched_ms": warm_batched * 1e3,
        "warm_reference_ms": warm_reference * 1e3,
        "warm_speedup": warm_reference / warm_batched,
        "full_batched_ms": full_batched * 1e3,
        "full_reference_ms": full_reference * 1e3,
        "full_speedup": full_reference / full_batched,
        "plan_nbytes": batched.plan_for().nbytes(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, one trial: drift gate + plumbing check for CI",
    )
    args = parser.parse_args(argv)

    drift_cases = [
        ("uniform level 1", 1, 3, ()),
        ("adaptive level 1+", 1, 3, (0, 3)),
    ]
    drifts = []
    for name, levels, steps, refine in drift_cases:
        d = check_drift(levels, steps, refine_keys=refine)
        drifts.append((name, d))

    if args.smoke:
        cases = [bench_level(1, reps=1, trials=1)]
    else:
        cases = [
            bench_level(1, reps=5, trials=8),
            bench_level(2, reps=2, trials=4),
        ]

    lines = [
        "hydro plan: batched stacked step vs per-leaf reference "
        "(min-of-trials, ms per RK3 step)",
        f"{'mesh':<10} {'leaves':>6} {'cold':>8} {'warm':>8} {'ref':>8} "
        f"{'speedup':>8} {'full':>8} {'full-ref':>9} {'speedup':>8}",
    ]
    for c in cases:
        lines.append(
            f"level {c['levels']:<4} {c['leaves']:>6} {c['cold_batched_ms']:>8.1f} "
            f"{c['warm_batched_ms']:>8.1f} {c['warm_reference_ms']:>8.1f} "
            f"{c['warm_speedup']:>7.2f}x {c['full_batched_ms']:>8.1f} "
            f"{c['full_reference_ms']:>9.1f} {c['full_speedup']:>7.2f}x"
        )
    for name, d in drifts:
        lines.append(f"drift {name}: max|batched - reference| = {d:.3e}")

    text = "\n".join(lines)
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "hydro_plan.txt").write_text(text + "\n")
    payload = {
        "benchmark": "hydro_plan",
        "smoke": args.smoke,
        "drift_tol": DRIFT_TOL,
        "drift": {name: d for name, d in drifts},
        "cases": cases,
    }
    (REPO_ROOT / "BENCH_hydro.json").write_text(json.dumps(payload, indent=2) + "\n")

    bad = [(name, d) for name, d in drifts if not (d <= DRIFT_TOL)]
    if bad:
        for name, d in bad:
            print(f"FAIL: {name} drift {d:.3e} > {DRIFT_TOL}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
