"""Fig. 6: rotating-star scaling on Fugaku up to 1024 nodes.

Paper findings: level 5 (2.5 M cells) scales to ~64 nodes, level 6 (14.2 M)
to ~512, level 7 (88.6 M) keeps scaling to 1024 — each level runs out of
work per core at its knee.  SVE and the communication optimization enabled.
"""

from repro.distsim import scaling_curve
from repro.distsim.sweep import node_series
from repro.machines import FUGAKU
from repro.scenarios import rotating_star

from benchmarks.conftest import emit, format_series

SERIES = {
    5: node_series(1, 256),
    6: node_series(128, 1024),
    7: [400, 512, 1024],
}


def run_curves():
    return {
        level: scaling_curve(
            rotating_star(level=level, build_mesh=False).spec,
            FUGAKU,
            nodes,
            simd=True,
            comm_local_optimization=True,
        )
        for level, nodes in SERIES.items()
    }


def test_fig6_rotating_star_scaling(benchmark):
    curves = benchmark(run_curves)
    rows = []
    for level, curve in curves.items():
        for point in curve:
            rows.append(
                (f"level{level}", point.nodes, f"{point.cells_per_second:.3e}",
                 f"util={point.utilization:.2f}")
            )
    from repro.distsim.report import ascii_loglog, curve_to_points

    plot = ascii_loglog(
        {f"level {lvl}": curve_to_points(c) for lvl, c in curves.items()}
    )
    emit(
        "fig6_fugaku_scaling",
        format_series("series  nodes  cells/s  util", rows) + [""] + plot,
    )

    def rate(level, nodes):
        return next(p for p in curves[level] if p.nodes == nodes).cells_per_second

    # Level 5: good scaling to 64, saturated by 256.
    assert rate(5, 64) / rate(5, 1) > 30
    assert rate(5, 256) / rate(5, 64) < 2.0
    # Level 6: keeps scaling 128 -> 512, knee after.
    assert rate(6, 512) / rate(6, 128) > 2.0
    assert rate(6, 1024) / rate(6, 512) < 1.5
    # Level 7: still scaling at 1024.
    assert rate(7, 1024) / rate(7, 400) > 1.8
