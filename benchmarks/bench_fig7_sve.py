"""Fig. 7: influence of SVE vectorization on distributed Ookami runs.

Paper finding: explicit SVE SIMD types speed up the compute kernels by a
factor of 2-3, clearly visible in cells/s across 1-128 nodes even though
only the compute kernels are vectorised.
"""

from repro.distsim import scaling_curve
from repro.distsim.sweep import node_series
from repro.machines import OOKAMI
from repro.scenarios import rotating_star

from benchmarks.conftest import emit, format_series


def run_curves():
    spec = rotating_star(level=5, build_mesh=False).spec
    nodes = node_series(1, 128)
    return {
        "sve": scaling_curve(spec, OOKAMI, nodes, simd=True),
        "scalar": scaling_curve(spec, OOKAMI, nodes, simd=False),
    }


def test_fig7_sve_vectorization(benchmark):
    curves = benchmark(run_curves)
    rows = []
    for sve, scalar in zip(curves["sve"], curves["scalar"]):
        rows.append(
            (sve.nodes, f"{sve.cells_per_second:.3e}",
             f"{scalar.cells_per_second:.3e}",
             f"{sve.cells_per_second / scalar.cells_per_second:.2f}x")
        )
    from repro.distsim.report import ascii_loglog, curve_to_points

    plot = ascii_loglog(
        {name: curve_to_points(curve) for name, curve in curves.items()}
    )
    emit(
        "fig7_sve",
        format_series("nodes  SVE_cells/s  scalar_cells/s  speedup", rows)
        + [""]
        + plot,
    )
    for row in rows:
        speedup = float(row[3][:-1])
        assert 1.8 < speedup < 3.0
