"""Shared benchmark plumbing.

Every bench regenerates one of the paper's tables or figures: it computes
the series with the performance model (or runs real kernels), prints the
rows, and writes them to ``benchmarks/output/<name>.txt`` so EXPERIMENTS.md
can cite stable artifacts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Sequence

OUTPUT_DIR = Path(__file__).parent / "output"


def emit(name: str, lines: Iterable[str]) -> str:
    """Print a figure/table's rows and persist them to the output dir."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    print(f"\n=== {name} ===")
    print(text)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    return text


def format_series(header: str, rows: Sequence[Sequence]) -> List[str]:
    out = [header]
    for row in rows:
        out.append("  ".join(str(c) for c in row))
    return out
