"""Process-backend strong scaling: 1/2/4 workers vs the serial batched step.

Standalone (not a paper figure):

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke]

Measures the true-parallel multiprocessing backend
(``HydroIntegrator(backend="process")``, see ``docs/parallel.md``) on the
level-1 and level-2 meshes: warm RK3 step wall-clock at 1, 2 and 4 worker
processes against the single-process batched baseline — once with the BSP
barrier schedule and once with the futurized interior/halo overlap
schedule — next to the distsim-predicted strong-scaling curves (overlap on
and off) for the same workload shape from ``repro.machines``.

Every point also records the per-phase attribution the executor measures:
``exchange_wait_ms`` (time in / blocked on the ghost exchange) versus
``compute_ms`` (rhs/reflux/update), so the overlap win is visible as a
falling exchange-wait share, not just total wall-clock.

Before timing anything, every benchmarked (nprocs, schedule) case is run
through the DES-vs-process cross-check harness
(``repro.core.crosscheck``), which asserts ``np.array_equal`` on all
fields after every step — the backends must agree to the bit or the
benchmark exits non-zero.  Persists:

* ``benchmarks/output/parallel.txt`` — the human-readable table,
* ``BENCH_parallel.json`` at the repo root — machine-readable numbers.

Gates: the bit-identity cross-check always; on hosts with >= 4 cores the
>= 1.6x wall-clock gate at 4 workers on the warm level-2 step, the
>= 1.15x overlap-vs-BSP warm-step gate and the >= 30% exchange-wait-share
reduction gate.  On smaller containers the measured curve is recorded
honestly (``oversubscribed`` points carry no headline vs-serial speedup)
and the distsim-predicted values are recorded in place of the skipped
measured gates.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.crosscheck import crosscheck_hydro  # noqa: E402
from repro.distsim import RunConfig, simulate_step  # noqa: E402
from repro.hydro import HydroIntegrator, IdealGasEOS  # noqa: E402
from repro.machines import MACHINES  # noqa: E402
from repro.octree import AmrMesh, Field  # noqa: E402
from repro.scenarios.spec import ScenarioSpec  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"
SPEEDUP_GATE = 1.6
GATE_NPROCS = 4
#: Measured overlap gates (level-2 warm step at GATE_NPROCS, >= 4 cores):
#: overlap wall-clock win vs BSP and exchange-wait-share reduction.
OVERLAP_SPEEDUP_GATE = 1.15
WAIT_SHARE_REDUCTION_GATE = 0.30


def build_mesh(levels: int, n: int = 8, seed: int = 0):
    """A smooth, rotating-star-like state on a uniformly refined mesh."""
    rng = np.random.default_rng(seed)
    mesh = AmrMesh(n=n, ghost=2, domain_size=1.0)
    for _ in range(levels):
        for key in list(mesh.leaf_keys()):
            mesh.refine(key)
    eos = IdealGasEOS()
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        rho = (
            1.0
            + 0.3 * np.sin(2 * np.pi * x) * np.cos(2 * np.pi * y)
            + 0.05 * rng.random(x.shape)
        )
        p = 1.0 + 0.2 * np.cos(2 * np.pi * z)
        eint = p / (eos.gamma - 1.0)
        vx = 0.1 * np.sin(2 * np.pi * y)
        leaf.subgrid.set_interior(Field.RHO, rho)
        leaf.subgrid.set_interior(Field.SX, rho * vx)
        leaf.subgrid.set_interior(Field.EGAS, eint + 0.5 * rho * vx**2)
        leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
        leaf.subgrid.set_interior(Field.FRAC1, 0.4 * rho)
        leaf.subgrid.set_interior(Field.FRAC2, 0.6 * rho)
    mesh.restrict_all()
    return mesh, eos


def best_of(f, reps: int, trials: int) -> float:
    out = []
    for _ in range(trials):
        gc.collect()
        t0 = time.perf_counter()
        for _ in range(reps):
            f()
        out.append((time.perf_counter() - t0) / reps)
    return min(out)


def predicted_curve(levels: int, n_leaves: int, nprocs_list, overlap: bool) -> dict:
    """distsim strong-scaling prediction for a same-shaped workload.

    Maps each worker-process count to one Fugaku node of the machine
    model and normalizes cells/s to the single-node point — the shape of
    the predicted curve (surface-to-volume ghost traffic vs per-leaf
    compute) is what the measured curve is compared against.  ``overlap``
    selects whether the model hides wire time behind compute or exposes
    it all (the BSP ablation).
    """
    machine = MACHINES["Fugaku"]
    spec = ScenarioSpec(
        name=f"bench-level-{levels}", n_subgrids=n_leaves, max_level=levels
    )
    base = None
    out = {}
    for nprocs in nprocs_list:
        r = simulate_step(
            spec, RunConfig(machine=machine, nodes=nprocs, overlap=overlap)
        )
        if base is None:
            base = r.cells_per_second
        out[nprocs] = r.cells_per_second / base
    return out


def predicted_overlap_point(levels: int, n_leaves: int, nprocs: int) -> dict:
    """distsim's view of what overlap buys at ``nprocs`` nodes: the
    overlap-vs-BSP step speedup and the exposed-wire share both ways.
    Recorded in place of the measured gates on undersized hosts."""
    machine = MACHINES["Fugaku"]
    spec = ScenarioSpec(
        name=f"bench-level-{levels}", n_subgrids=n_leaves, max_level=levels
    )
    on = simulate_step(
        spec, RunConfig(machine=machine, nodes=nprocs, overlap=True)
    )
    off = simulate_step(
        spec, RunConfig(machine=machine, nodes=nprocs, overlap=False)
    )
    share_on = on.exposed_comm_s / on.total_s
    share_off = off.exposed_comm_s / off.total_s
    return {
        "nprocs": nprocs,
        "speedup_overlap_vs_bsp": off.total_s / on.total_s,
        "wait_share_bsp": share_off,
        "wait_share_overlap": share_on,
        "wait_share_reduction": (
            1.0 - share_on / share_off if share_off > 0 else 0.0
        ),
    }


def attribution(integ: HydroIntegrator, dt: float, steps: int = 3) -> dict:
    """Average per-step exchange-wait / compute attribution (ms)."""
    ex = integ.executor()
    wait_s = compute_s = 0.0
    for _ in range(steps):
        integ.step(dt)
        wait_s += ex.exchange_wait_s
        compute_s += ex.compute_s
    wait_ms = wait_s / steps * 1e3
    compute_ms = compute_s / steps * 1e3
    denom = wait_ms + compute_ms
    return {
        "exchange_wait_ms": wait_ms,
        "compute_ms": compute_ms,
        "exchange_wait_share": wait_ms / denom if denom > 0 else 0.0,
    }


def bench_case(levels: int, nprocs_list, reps: int, trials: int,
               check_steps: int) -> dict:
    mesh, eos = build_mesh(levels)
    n_leaves = len(mesh.leaves())
    dt = 1e-4
    cores = len(os.sched_getaffinity(0))

    # Equivalence first: every benchmarked (nprocs, schedule) combination
    # goes through the DES-vs-process cross-check (np.array_equal per
    # field per step).
    checks = {}
    for nprocs in nprocs_list:
        for overlap in (False, True):
            check_mesh, check_eos = build_mesh(levels)
            result = crosscheck_hydro(
                check_mesh, steps=check_steps, nprocs=nprocs, eos=check_eos,
                overlap=overlap,
            )
            checks[(nprocs, overlap)] = result.ok

    serial = HydroIntegrator(mesh, eos)
    serial.step(dt)  # warm the plan caches
    serial_s = best_of(lambda: serial.step(dt), reps, trials)

    points = []
    warm_by_key = {}
    for nprocs in nprocs_list:
        for overlap in (False, True):
            pmesh, peos = build_mesh(levels)
            integ = HydroIntegrator(
                pmesh, peos, backend="process", nprocs=nprocs,
                overlap=overlap,
            )
            try:
                gc.collect()
                t0 = time.perf_counter()
                integ.step(dt)  # cold: fork + arena build + first step
                cold_s = time.perf_counter() - t0
                warm_s = best_of(lambda: integ.step(dt), reps, trials)
                attrib = attribution(integ, dt)
            finally:
                integ.close()
            warm_by_key[(nprocs, overlap)] = warm_s
            oversubscribed = nprocs > cores
            points.append({
                "nprocs": nprocs,
                "overlap": overlap,
                "cold_ms": cold_s * 1e3,
                "warm_ms": warm_s * 1e3,
                # More workers than schedulable cores: sub-1.0 speedups
                # here are a property of the container, not a regression —
                # the headline vs-serial speedup is withheld (annotated
                # raw value instead) so drift tooling cannot alert on it.
                "oversubscribed": oversubscribed,
                "speedup_vs_serial": (
                    None if oversubscribed else serial_s / warm_s
                ),
                "speedup_vs_serial_raw": serial_s / warm_s,
                "speedup_vs_1proc": None,  # filled below
                "crosscheck_ok": checks[(nprocs, overlap)],
                **attrib,
            })
    for p in points:
        base = warm_by_key[(nprocs_list[0], p["overlap"])]
        p["speedup_vs_1proc"] = base / (p["warm_ms"] / 1e3)

    return {
        "levels": levels,
        "leaves": n_leaves,
        "cells": int(mesh.n_cells()),
        "cores_online": cores,
        "serial_warm_ms": serial_s * 1e3,
        "points": points,
        "predicted_speedup": {
            str(k): v
            for k, v in predicted_curve(
                levels, n_leaves, nprocs_list, overlap=True
            ).items()
        },
        "predicted_speedup_no_overlap": {
            str(k): v
            for k, v in predicted_curve(
                levels, n_leaves, nprocs_list, overlap=False
            ).items()
        },
        "predicted_overlap": predicted_overlap_point(
            levels, n_leaves, GATE_NPROCS
        ),
    }


def _point(case: dict, nprocs: int, overlap: bool) -> dict:
    return next(
        p for p in case["points"]
        if p["nprocs"] == nprocs and p["overlap"] == overlap
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="level-1 only, 1/2 procs, one trial: the CI equivalence gate",
    )
    args = parser.parse_args(argv)

    cores = len(os.sched_getaffinity(0))
    if args.smoke:
        cases = [bench_case(1, [1, 2], reps=1, trials=1, check_steps=1)]
    else:
        cases = [
            bench_case(1, [1, 2, 4], reps=3, trials=4, check_steps=2),
            bench_case(2, [1, 2, 4], reps=1, trials=3, check_steps=2),
        ]

    lines = [
        "process backend strong scaling: warm RK3 step, min-of-trials "
        f"(host exposes {cores} core(s))",
        f"{'mesh':<10} {'nprocs':>6} {'sched':>8} {'cold':>9} {'warm':>9} "
        f"{'wait':>8} {'compute':>8} {'vs-serial':>10} {'vs-1proc':>9} "
        f"{'predicted':>10} {'bits':>6}",
    ]
    for c in cases:
        for p in c["points"]:
            key = str(p["nprocs"])
            pred = (
                c["predicted_speedup"][key] if p["overlap"]
                else c["predicted_speedup_no_overlap"][key]
            )
            sched = "overlap" if p["overlap"] else "bsp"
            if p["speedup_vs_serial"] is None:
                vs_serial = f"{p['speedup_vs_serial_raw']:.2f}x*"
            else:
                vs_serial = f"{p['speedup_vs_serial']:.2f}x"
            mark = " (oversubscribed)" if p["oversubscribed"] else ""
            lines.append(
                f"level {c['levels']:<4} {p['nprocs']:>6} {sched:>8} "
                f"{p['cold_ms']:>8.1f} {p['warm_ms']:>9.1f} "
                f"{p['exchange_wait_ms']:>7.1f} {p['compute_ms']:>8.1f} "
                f"{vs_serial:>10} {p['speedup_vs_1proc']:>8.2f}x "
                f"{pred:>9.2f}x "
                f"{'ok' if p['crosscheck_ok'] else 'FAIL':>6}{mark}"
            )
    lines.append(
        "(*: oversubscribed points report the raw ratio annotated, "
        "not as a headline speedup)"
    )

    gate_applies = cores >= GATE_NPROCS and not args.smoke
    gate_ok = True
    overlap_gates = {}
    if gate_applies:
        level2 = next(c for c in cases if c["levels"] == 2)
        gate_point = _point(level2, GATE_NPROCS, False)
        assert not gate_point["oversubscribed"]  # implied by cores check
        measured = gate_point["speedup_vs_1proc"]
        gate_ok = measured >= SPEEDUP_GATE
        lines.append(
            f"gate: level-2 warm speedup at {GATE_NPROCS} procs = "
            f"{measured:.2f}x (require >= {SPEEDUP_GATE}x) "
            f"{'PASS' if gate_ok else 'FAIL'}"
        )
        bsp = _point(level2, GATE_NPROCS, False)
        ovl = _point(level2, GATE_NPROCS, True)
        ovl_speedup = bsp["warm_ms"] / ovl["warm_ms"]
        share_bsp = bsp["exchange_wait_share"]
        share_ovl = ovl["exchange_wait_share"]
        reduction = 1.0 - share_ovl / share_bsp if share_bsp > 0 else 0.0
        speedup_ok = ovl_speedup >= OVERLAP_SPEEDUP_GATE
        share_ok = reduction >= WAIT_SHARE_REDUCTION_GATE
        overlap_gates = {
            "measured": True,
            "speedup_overlap_vs_bsp": ovl_speedup,
            "speedup_ok": speedup_ok,
            "wait_share_bsp": share_bsp,
            "wait_share_overlap": share_ovl,
            "wait_share_reduction": reduction,
            "wait_share_ok": share_ok,
        }
        gate_ok = gate_ok and speedup_ok and share_ok
        lines.append(
            f"gate: level-2 overlap vs bsp at {GATE_NPROCS} procs = "
            f"{ovl_speedup:.2f}x (require >= {OVERLAP_SPEEDUP_GATE}x) "
            f"{'PASS' if speedup_ok else 'FAIL'}"
        )
        lines.append(
            f"gate: exchange-wait share {share_bsp:.1%} -> {share_ovl:.1%} "
            f"({reduction:.0%} reduction, require >= "
            f"{WAIT_SHARE_REDUCTION_GATE:.0%}) "
            f"{'PASS' if share_ok else 'FAIL'}"
        )
    else:
        pred = cases[-1]["predicted_overlap"]
        overlap_gates = {"measured": False, "predicted": pred}
        lines.append(
            f"gate: skipped ({'smoke mode' if args.smoke else f'only {cores} core(s) online'}); "
            "bit-identity cross-check still enforced; distsim-predicted "
            f"overlap at {pred['nprocs']} procs: "
            f"{pred['speedup_overlap_vs_bsp']:.2f}x step speedup, "
            f"exposed-wire share {pred['wait_share_bsp']:.1%} -> "
            f"{pred['wait_share_overlap']:.1%}"
        )

    text = "\n".join(lines)
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "parallel.txt").write_text(text + "\n")
    payload = {
        "benchmark": "parallel",
        "smoke": args.smoke,
        "cores_online": cores,
        "speedup_gate": SPEEDUP_GATE,
        "gate_nprocs": GATE_NPROCS,
        "overlap_speedup_gate": OVERLAP_SPEEDUP_GATE,
        "wait_share_reduction_gate": WAIT_SHARE_REDUCTION_GATE,
        "gate_applies": gate_applies,
        "gate_ok": gate_ok,
        "overlap_gates": overlap_gates,
        "cases": cases,
    }
    (REPO_ROOT / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if not gate_ok:
        print(
            f"FAIL: performance gate(s) below threshold at {GATE_NPROCS} "
            "procs",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
