"""Process-backend strong scaling: 1/2/4 workers vs the serial batched step.

Standalone (not a paper figure):

    PYTHONPATH=src python benchmarks/bench_parallel.py [--smoke]

Measures the true-parallel multiprocessing backend
(``HydroIntegrator(backend="process")``, see ``docs/parallel.md``) on the
level-1 and level-2 meshes: warm RK3 step wall-clock at 1, 2 and 4 worker
processes against the single-process batched baseline, next to the
distsim-predicted strong-scaling curve for the same workload shape from
``repro.machines`` (Fugaku node model at 1/2/4 nodes, normalized to 1).

Before timing anything, every benchmarked case is run through the
DES-vs-process cross-check harness (``repro.core.crosscheck``), which
asserts ``np.array_equal`` on all fields after every step — the backends
must agree to the bit or the benchmark exits non-zero.  Persists:

* ``benchmarks/output/parallel.txt`` — the human-readable table,
* ``BENCH_parallel.json`` at the repo root — machine-readable numbers.

Gates: the bit-identity cross-check always; the >= 1.6x wall-clock gate at
4 workers on the warm level-2 step only when the host actually exposes
4+ cores (``os.sched_getaffinity``) — on smaller containers the measured
curve is recorded honestly and the gate is reported as skipped.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.crosscheck import crosscheck_hydro  # noqa: E402
from repro.distsim import RunConfig, simulate_step  # noqa: E402
from repro.hydro import HydroIntegrator, IdealGasEOS  # noqa: E402
from repro.machines import MACHINES  # noqa: E402
from repro.octree import AmrMesh, Field  # noqa: E402
from repro.scenarios.spec import ScenarioSpec  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"
SPEEDUP_GATE = 1.6
GATE_NPROCS = 4


def build_mesh(levels: int, n: int = 8, seed: int = 0):
    """A smooth, rotating-star-like state on a uniformly refined mesh."""
    rng = np.random.default_rng(seed)
    mesh = AmrMesh(n=n, ghost=2, domain_size=1.0)
    for _ in range(levels):
        for key in list(mesh.leaf_keys()):
            mesh.refine(key)
    eos = IdealGasEOS()
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        rho = (
            1.0
            + 0.3 * np.sin(2 * np.pi * x) * np.cos(2 * np.pi * y)
            + 0.05 * rng.random(x.shape)
        )
        p = 1.0 + 0.2 * np.cos(2 * np.pi * z)
        eint = p / (eos.gamma - 1.0)
        vx = 0.1 * np.sin(2 * np.pi * y)
        leaf.subgrid.set_interior(Field.RHO, rho)
        leaf.subgrid.set_interior(Field.SX, rho * vx)
        leaf.subgrid.set_interior(Field.EGAS, eint + 0.5 * rho * vx**2)
        leaf.subgrid.set_interior(Field.TAU, eos.tau_from_eint(eint))
        leaf.subgrid.set_interior(Field.FRAC1, 0.4 * rho)
        leaf.subgrid.set_interior(Field.FRAC2, 0.6 * rho)
    mesh.restrict_all()
    return mesh, eos


def best_of(f, reps: int, trials: int) -> float:
    out = []
    for _ in range(trials):
        gc.collect()
        t0 = time.perf_counter()
        for _ in range(reps):
            f()
        out.append((time.perf_counter() - t0) / reps)
    return min(out)


def predicted_curve(levels: int, n_leaves: int, nprocs_list) -> dict:
    """distsim strong-scaling prediction for a same-shaped workload.

    Maps each worker-process count to one Fugaku node of the machine
    model and normalizes cells/s to the single-node point — the shape of
    the predicted curve (surface-to-volume ghost traffic vs per-leaf
    compute) is what the measured curve is compared against.
    """
    machine = MACHINES["Fugaku"]
    spec = ScenarioSpec(
        name=f"bench-level-{levels}", n_subgrids=n_leaves, max_level=levels
    )
    base = None
    out = {}
    for nprocs in nprocs_list:
        r = simulate_step(spec, RunConfig(machine=machine, nodes=nprocs))
        if base is None:
            base = r.cells_per_second
        out[nprocs] = r.cells_per_second / base
    return out


def bench_case(levels: int, nprocs_list, reps: int, trials: int,
               check_steps: int) -> dict:
    mesh, eos = build_mesh(levels)
    n_leaves = len(mesh.leaves())
    dt = 1e-4
    cores = len(os.sched_getaffinity(0))

    # Equivalence first: every benchmarked mesh goes through the
    # DES-vs-process cross-check (np.array_equal per field per step).
    checks = {}
    for nprocs in nprocs_list:
        check_mesh, check_eos = build_mesh(levels)
        result = crosscheck_hydro(
            check_mesh, steps=check_steps, nprocs=nprocs, eos=check_eos
        )
        checks[nprocs] = result.ok

    serial = HydroIntegrator(mesh, eos)
    serial.step(dt)  # warm the plan caches
    serial_s = best_of(lambda: serial.step(dt), reps, trials)

    points = {}
    for nprocs in nprocs_list:
        pmesh, peos = build_mesh(levels)
        integ = HydroIntegrator(pmesh, peos, backend="process", nprocs=nprocs)
        try:
            gc.collect()
            t0 = time.perf_counter()
            integ.step(dt)  # cold: fork + arena build + first step
            cold_s = time.perf_counter() - t0
            warm_s = best_of(lambda: integ.step(dt), reps, trials)
        finally:
            integ.close()
        points[nprocs] = {
            "cold_ms": cold_s * 1e3,
            "warm_ms": warm_s * 1e3,
            "speedup_vs_serial": serial_s / warm_s,
            "speedup_vs_1proc": None,  # filled below
            "crosscheck_ok": checks[nprocs],
            # More workers than schedulable cores: sub-1.0 speedups here
            # are a property of the container, not a regression — drift
            # tooling must not alert on oversubscribed points.
            "oversubscribed": nprocs > cores,
        }
    base_warm = points[nprocs_list[0]]["warm_ms"]
    for nprocs in nprocs_list:
        points[nprocs]["speedup_vs_1proc"] = base_warm / points[nprocs]["warm_ms"]

    return {
        "levels": levels,
        "leaves": n_leaves,
        "cells": int(mesh.n_cells()),
        "cores_online": cores,
        "serial_warm_ms": serial_s * 1e3,
        "points": {str(k): v for k, v in points.items()},
        "predicted_speedup": {
            str(k): v for k, v in predicted_curve(levels, n_leaves, nprocs_list).items()
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="level-1 only, 1/2 procs, one trial: the CI equivalence gate",
    )
    args = parser.parse_args(argv)

    cores = len(os.sched_getaffinity(0))
    if args.smoke:
        cases = [bench_case(1, [1, 2], reps=1, trials=1, check_steps=1)]
    else:
        cases = [
            bench_case(1, [1, 2, 4], reps=3, trials=4, check_steps=2),
            bench_case(2, [1, 2, 4], reps=1, trials=3, check_steps=2),
        ]

    lines = [
        "process backend strong scaling: warm RK3 step, min-of-trials "
        f"(host exposes {cores} core(s))",
        f"{'mesh':<10} {'nprocs':>6} {'cold':>9} {'warm':>9} {'vs-serial':>10} "
        f"{'vs-1proc':>9} {'predicted':>10} {'bits':>6}",
    ]
    for c in cases:
        for nprocs, p in c["points"].items():
            pred = c["predicted_speedup"][nprocs]
            mark = " (oversubscribed)" if p["oversubscribed"] else ""
            lines.append(
                f"level {c['levels']:<4} {nprocs:>6} {p['cold_ms']:>8.1f} "
                f"{p['warm_ms']:>9.1f} {p['speedup_vs_serial']:>9.2f}x "
                f"{p['speedup_vs_1proc']:>8.2f}x {pred:>9.2f}x "
                f"{'ok' if p['crosscheck_ok'] else 'FAIL':>6}{mark}"
            )

    gate_applies = cores >= GATE_NPROCS and not args.smoke
    gate_ok = True
    if gate_applies:
        level2 = next(c for c in cases if c["levels"] == 2)
        gate_point = level2["points"][str(GATE_NPROCS)]
        assert not gate_point["oversubscribed"]  # implied by cores check
        measured = gate_point["speedup_vs_1proc"]
        gate_ok = measured >= SPEEDUP_GATE
        lines.append(
            f"gate: level-2 warm speedup at {GATE_NPROCS} procs = "
            f"{measured:.2f}x (require >= {SPEEDUP_GATE}x) "
            f"{'PASS' if gate_ok else 'FAIL'}"
        )
    else:
        lines.append(
            f"gate: skipped ({'smoke mode' if args.smoke else f'only {cores} core(s) online'}); "
            "bit-identity cross-check still enforced"
        )

    text = "\n".join(lines)
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "parallel.txt").write_text(text + "\n")
    payload = {
        "benchmark": "parallel",
        "smoke": args.smoke,
        "cores_online": cores,
        "speedup_gate": SPEEDUP_GATE,
        "gate_nprocs": GATE_NPROCS,
        "gate_applies": gate_applies,
        "gate_ok": gate_ok,
        "cases": cases,
    }
    (REPO_ROOT / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if not gate_ok:
        print(
            f"FAIL: {GATE_NPROCS}-proc speedup below {SPEEDUP_GATE}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
