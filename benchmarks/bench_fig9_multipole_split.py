"""Fig. 9: multipole work splitting via the Kokkos HPX execution space.

Paper finding: OFF (1 HPX task per Multipole kernel) is fine — slightly
better — on one node; ON (16 tasks per kernel) yields a noticeable speedup
at 128 nodes, where cores would otherwise starve during tree traversals.
The bench also sweeps K beyond the paper's {1, 16} (an ablation).
"""

from repro.distsim import RunConfig, simulate_step
from repro.machines import OOKAMI
from repro.scenarios import rotating_star

from benchmarks.conftest import emit, format_series

TASK_SWEEP = (1, 2, 4, 8, 16, 32)


def run_matrix():
    spec = rotating_star(level=5, build_mesh=False).spec
    out = {}
    for nodes in (1, 8, 64, 128):
        for k in TASK_SWEEP:
            cfg = RunConfig(machine=OOKAMI, nodes=nodes, tasks_per_multipole_kernel=k)
            out[(nodes, k)] = simulate_step(spec, cfg)
    return out


def test_fig9_multipole_work_splitting(benchmark):
    matrix = benchmark(run_matrix)
    rows = []
    for nodes in (1, 8, 64, 128):
        row = [f"{nodes} nodes"]
        for k in TASK_SWEEP:
            row.append(f"{matrix[(nodes, k)].cells_per_second:.3e}")
        rows.append(tuple(row))
    header = "config  " + "  ".join(f"K={k}" for k in TASK_SWEEP)
    emit("fig9_multipole_split", format_series(header, rows))

    def rate(nodes, k):
        return matrix[(nodes, k)].cells_per_second

    # Paper's OFF/ON comparison.
    assert rate(1, 16) <= rate(1, 1)  # no benefit on one node
    assert rate(128, 16) / rate(128, 1) > 1.1  # noticeable speedup at 128

    # Ablation: the benefit grows monotonically with node count.
    gains = [rate(n, 16) / rate(n, 1) for n in (1, 8, 64, 128)]
    assert all(b >= a - 1e-9 for a, b in zip(gains, gains[1:]))
