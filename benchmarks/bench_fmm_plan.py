"""FMM plan benchmark: cold / warm solves, work-split shards, reference.

Standalone (not a paper figure):

    PYTHONPATH=src python benchmarks/bench_fmm_plan.py [--smoke]

Measures the plan-cached batched FMM solve (``FmmSolver.solve``) against
the per-node reference traversal (``solve_reference``), and the
work-split solve (``m2l_split``, see ``docs/comms.md``) against the
unsplit one.  Persists:

* ``benchmarks/output/fmm_plan.txt`` — the human-readable table,
* ``BENCH_fmm.json`` at the repo root — machine-readable numbers.

Drift gates (exit 1 on violation):

* batched vs reference within 1e-13 (relative to the field scale);
* split vs unsplit **exactly zero** — sharding a far batch must not
  change a single bit (each target keeps its complete, order-preserved
  source segment).

Timing methodology matches ``bench_hydro_plan.py``: minimum over several
trials of the mean of a few repetitions, ``gc.collect()`` before each
trial.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.gravity.fmm import FmmSolver  # noqa: E402
from repro.octree import AmrMesh, Field  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"
DRIFT_TOL = 1e-13
SPLIT_ROWS = 64


def build_mesh(levels: int, n: int = 8, refine_keys=(), seed: int = 0):
    """A gaussian blob on a (possibly adaptively refined) mesh."""
    rng = np.random.default_rng(seed)
    mesh = AmrMesh(n=n, ghost=2, domain_size=2.0)
    for _ in range(levels):
        for key in list(mesh.leaf_keys()):
            mesh.refine(key)
    for k in refine_keys:
        keys = sorted(mesh.leaf_keys())
        mesh.refine(keys[k % len(keys)])
    for leaf in mesh.leaves():
        x, y, z = leaf.cell_centers()
        rho = np.exp(-(x**2 + y**2 + z**2) / 0.25) + 0.01 * rng.random(x.shape)
        leaf.subgrid.set_interior(Field.RHO, rho)
    mesh.restrict_all()
    return mesh


def best_of(f, reps: int, trials: int) -> float:
    out = []
    for _ in range(trials):
        gc.collect()
        t0 = time.perf_counter()
        for _ in range(reps):
            f()
        out.append((time.perf_counter() - t0) / reps)
    return min(out)


def relative_drift(res, ref) -> float:
    """max |res - ref| over phi and accel, relative to the field scales."""
    phi_scale = max(np.abs(p).max() for p in ref.phi.values()) or 1.0
    acc_scale = max(np.abs(a).max() for a in ref.accel.values()) or 1.0
    worst = 0.0
    for key in ref.phi:
        worst = max(worst, np.abs(res.phi[key] - ref.phi[key]).max() / phi_scale)
        worst = max(worst, np.abs(res.accel[key] - ref.accel[key]).max() / acc_scale)
    return float(worst)


def split_drift(res, ref) -> float:
    """0.0 when split and unsplit agree bit-for-bit, else the max |diff|."""
    worst = 0.0
    for key in ref.phi:
        if not (
            np.array_equal(res.phi[key], ref.phi[key])
            and np.array_equal(res.accel[key], ref.accel[key])
        ):
            worst = max(
                worst,
                float(np.abs(res.phi[key] - ref.phi[key]).max()),
                float(np.abs(res.accel[key] - ref.accel[key]).max()),
            )
    return worst


def bench_level(levels: int, reps: int, trials: int, refine_keys=()):
    mesh = build_mesh(levels, refine_keys=refine_keys)
    solver = FmmSolver()
    split_solver = FmmSolver(m2l_split=SPLIT_ROWS)

    gc.collect()
    t0 = time.perf_counter()
    cold_res = solver.solve(mesh)  # plan build + first batched solve
    cold_s = time.perf_counter() - t0

    warm = best_of(lambda: solver.solve(mesh), reps, trials)
    split_res = split_solver.solve(mesh)  # builds plan + shard cache
    warm_split = best_of(lambda: split_solver.solve(mesh), reps, trials)
    t0 = time.perf_counter()
    ref_res = solver.solve_reference(mesh)
    reference_s = time.perf_counter() - t0

    plan = solver.plan_for(mesh)
    shards = plan.split(SPLIT_ROWS)
    return {
        "levels": levels,
        "leaves": len(mesh.leaves()),
        "cells": int(mesh.n_cells()),
        "cold_ms": cold_s * 1e3,
        "warm_ms": warm * 1e3,
        "warm_split_ms": warm_split * 1e3,
        "reference_ms": reference_s * 1e3,
        "speedup_vs_reference": reference_s / warm,
        "m2l_split_rows": SPLIT_ROWS,
        "far_batches": len(plan.far_levels),
        "split_batches": len(shards),
        "drift_vs_reference": relative_drift(cold_res, ref_res),
        "split_drift": split_drift(split_res, cold_res),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes, one trial: drift gates + plumbing check for CI",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        cases = [bench_level(1, reps=1, trials=1, refine_keys=(0,))]
    else:
        cases = [
            bench_level(1, reps=5, trials=8),
            bench_level(2, reps=2, trials=4),
            bench_level(1, reps=3, trials=6, refine_keys=(0, 3)),
        ]

    lines = [
        "fmm plan: batched solve vs reference traversal "
        "(min-of-trials, ms per solve)",
        f"{'mesh':<10} {'leaves':>6} {'cold':>8} {'warm':>8} {'split':>8} "
        f"{'ref':>9} {'speedup':>8} {'batches':>8}",
    ]
    for c in cases:
        lines.append(
            f"level {c['levels']:<4} {c['leaves']:>6} {c['cold_ms']:>8.1f} "
            f"{c['warm_ms']:>8.1f} {c['warm_split_ms']:>8.1f} "
            f"{c['reference_ms']:>9.1f} {c['speedup_vs_reference']:>7.2f}x "
            f"{c['far_batches']:>3}->{c['split_batches']:<3}"
        )
    for c in cases:
        lines.append(
            f"drift level {c['levels']} (leaves {c['leaves']}): "
            f"vs reference {c['drift_vs_reference']:.3e}, "
            f"split vs unsplit {c['split_drift']:.3e}"
        )

    text = "\n".join(lines)
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "fmm_plan.txt").write_text(text + "\n")
    payload = {
        "benchmark": "fmm_plan",
        "smoke": args.smoke,
        "drift_tol": DRIFT_TOL,
        "drift": {
            f"level {c['levels']} leaves {c['leaves']}": c["drift_vs_reference"]
            for c in cases
        },
        "cases": cases,
    }
    (REPO_ROOT / "BENCH_fmm.json").write_text(json.dumps(payload, indent=2) + "\n")

    status = 0
    for c in cases:
        label = f"level {c['levels']} (leaves {c['leaves']})"
        if not (c["drift_vs_reference"] <= DRIFT_TOL):
            print(
                f"FAIL: {label} drift {c['drift_vs_reference']:.3e} > {DRIFT_TOL}",
                file=sys.stderr,
            )
            status = 1
        if c["split_drift"] != 0.0:
            print(
                f"FAIL: {label} split drift {c['split_drift']:.3e} != 0 "
                "(work-splitting must be bit-identical)",
                file=sys.stderr,
            )
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
