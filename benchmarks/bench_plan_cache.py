"""Plan maintenance: incremental regrid rebuilds + persistent cache.

Standalone (not a paper figure):

    PYTHONPATH=src python benchmarks/bench_plan_cache.py [--smoke]

Measures the two halves of the plan-lifecycle contract
(``docs/plan_lifecycle.md``) on the Sedov blast mesh with self-gravity,
so the totals cover both cached plan layers (batched hydro + FMM):

* **Regrid-heavy incremental maintenance** — the same refine/derefine
  sequence is run twice, once with announced regrids (``notify_regrid``
  carries the ``RegridDelta``, so each rebuild re-traces only the faces
  the delta touched) and once unannounced (every regrid pays the cold
  trace).  Both runs must be **bit-identical** field-for-field; the gate
  requires the announced run's total plan-rebuild time to be at least
  ``REBUILD_GATE``x smaller.
* **Persistent cache hits** — a fresh process over the same topology
  must serve its plan from the content-addressed store
  (``repro.core.plancache``) with **zero** cold builds, asserted from
  the ``plan.hydro.*_builds`` counters, and again step bit-identically.

Persists ``benchmarks/output/plancache.txt`` (human-readable) and
``BENCH_plancache.json`` at the repo root (machine-readable).  The
speedup gate applies only to the full run; the zero-cold-builds and
bit-identity assertions are enforced in smoke mode too.
"""

from __future__ import annotations

import argparse
import gc
import json
import shutil
import sys
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.plancache import PlanCache  # noqa: E402
from repro.gravity.fmm import FmmSolver  # noqa: E402
from repro.hydro import HydroIntegrator  # noqa: E402
from repro.octree.regrid import RegridDelta  # noqa: E402
from repro.profiling.apex import CounterRegistry  # noqa: E402
from repro.scenarios.blast import sedov_blast  # noqa: E402

OUTPUT_DIR = Path(__file__).parent / "output"
#: Announced-regrid plan maintenance must beat cold-every-regrid by this
#: factor on total rebuild time (the ISSUE acceptance criterion).
REBUILD_GATE = 3.0
DT = 1e-4


def _mutate(mesh, step: int, target):
    """Deterministic regrid churn: refine ``target`` on even steps,
    coarsen it back on odd ones.  Returns the exact delta."""
    old_nodes = frozenset(mesh.nodes)
    old_leaves = frozenset(mesh.leaf_keys())
    if step % 2 == 0:
        mesh.refine(target)
    else:
        mesh.derefine(target)
    return RegridDelta.between(
        old_nodes, old_leaves, frozenset(mesh.nodes), frozenset(mesh.leaf_keys())
    )


def _leaf_target(mesh):
    return sorted(mesh.leaf_keys())[0]


def _run(levels: int, steps: int, announce: bool, plan_cache=None):
    """Run the churn sequence with self-gravity; return (registry, mesh).

    ``announce=False`` is the cold-every-regrid baseline: the hydro
    integrator never hears about the regrid (its face-trace cache is
    cleared on the fingerprint miss) and the FMM solver's plan chain is
    explicitly broken each regrid — pre-delta-maintenance semantics.
    """
    scenario = sedov_blast(levels=levels)
    mesh = scenario.mesh
    target = _leaf_target(mesh)
    reg = CounterRegistry()
    solver = FmmSolver(empty_mass_threshold=1e-12, plan_cache=plan_cache)
    solver.registry = reg
    integ = HydroIntegrator(
        mesh,
        eos=scenario.eos,
        gravity=solver.as_gravity_callback(),
        plan_cache=plan_cache,
    )
    integ.registry = reg
    try:
        for step in range(steps):
            delta = _mutate(mesh, step, target)
            if announce:
                integ.notify_regrid(delta)
            else:
                solver.invalidate_plan()
            integ.step(DT)
    finally:
        integ.close()
    return reg, mesh


def _assert_identical(mesh_a, mesh_b, label: str) -> None:
    keys_a = sorted(mesh_a.leaf_keys())
    assert keys_a == sorted(mesh_b.leaf_keys()), f"{label}: leaf sets differ"
    for key in keys_a:
        a = mesh_a.nodes[key].subgrid.data
        b = mesh_b.nodes[key].subgrid.data
        if not np.array_equal(a, b):
            raise AssertionError(f"{label}: fields differ at leaf {key}")


def bench_regrid(levels: int, steps: int) -> dict:
    gc.collect()
    reg_delta, mesh_delta = _run(levels, steps, announce=True)
    gc.collect()
    reg_cold, mesh_cold = _run(levels, steps, announce=False)
    _assert_identical(mesh_delta, mesh_cold, "announced vs cold-every-regrid")

    # Total plan-rebuild wall-clock across both plan layers, whichever
    # tier each rebuild took.
    names = [
        f"plan.{layer}.{tier}"
        for layer in ("hydro", "fmm")
        for tier in ("delta", "cache_hit", "cold")
    ]
    incr_s = sum(reg_delta.total(name) for name in names)
    cold_s = sum(reg_cold.total(name) for name in names)

    def builds(reg, tier):
        return reg.count(f"plan.hydro.{tier}_builds") + reg.count(
            f"plan.fmm.{tier}_builds"
        )

    return {
        "levels": levels,
        "steps": steps,
        "leaves": len(mesh_delta.leaves()),
        "delta_builds": builds(reg_delta, "delta"),
        "cold_builds_announced": builds(reg_delta, "cold"),
        "cold_builds_unannounced": builds(reg_cold, "cold"),
        "rebuild_s_announced": incr_s,
        "rebuild_s_unannounced": cold_s,
        "speedup": cold_s / incr_s if incr_s > 0 else float("inf"),
        "bit_identical": True,  # _assert_identical raised otherwise
    }


def bench_cache(levels: int, steps: int, cache_dir: Path) -> dict:
    if cache_dir.exists():
        shutil.rmtree(cache_dir)
    gc.collect()
    reg_cold, mesh_cold = _run(
        levels, steps, announce=True, plan_cache=PlanCache(cache_dir)
    )
    gc.collect()
    hit_cache = PlanCache(cache_dir)
    reg_hit, mesh_hit = _run(levels, steps, announce=False, plan_cache=hit_cache)
    _assert_identical(mesh_cold, mesh_hit, "cold vs cache-hit rerun")

    cold_builds_rerun = reg_hit.count("plan.hydro.cold_builds") + reg_hit.count(
        "plan.fmm.cold_builds"
    )
    if cold_builds_rerun != 0:
        raise AssertionError(
            f"warmed rerun performed {cold_builds_rerun} cold plan build(s); "
            "the cache must serve every topology"
        )
    cold_first = reg_cold.count("plan.hydro.cold_builds") + reg_cold.count(
        "plan.fmm.cold_builds"
    )
    hits = reg_hit.count("plan.hydro.cache_hit_builds") + reg_hit.count(
        "plan.fmm.cache_hit_builds"
    )
    cold_s = reg_cold.total("plan.hydro.cold") + reg_cold.total("plan.fmm.cold")
    hit_s = reg_hit.total("plan.hydro.cache_hit") + reg_hit.total(
        "plan.fmm.cache_hit"
    )
    return {
        "levels": levels,
        "steps": steps,
        "entries": sum(1 for _ in cache_dir.iterdir()),
        "cold_builds_first_run": cold_first,
        "cache_hits_rerun": hits,
        "cold_builds_rerun": cold_builds_rerun,
        "cold_build_ms": cold_s / max(cold_first, 1) * 1e3,
        "cache_hit_ms": hit_s / max(hits, 1) * 1e3,
        "bit_identical": True,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="level-1, few steps: correctness assertions only, no gate",
    )
    parser.add_argument(
        "--cache-dir",
        default=str(OUTPUT_DIR / "plancache"),
        help="scratch directory for the persistent-cache case (wiped)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        regrid = bench_regrid(levels=1, steps=4)
        cache = bench_cache(levels=1, steps=2, cache_dir=Path(args.cache_dir))
    else:
        regrid = bench_regrid(levels=2, steps=24)
        cache = bench_cache(levels=2, steps=4, cache_dir=Path(args.cache_dir))

    lines = [
        "plan lifecycle: incremental regrid maintenance + persistent cache",
        f"regrid churn (level {regrid['levels']}, {regrid['steps']} steps, "
        f"{regrid['leaves']} leaves):",
        f"  announced   rebuild total {regrid['rebuild_s_announced'] * 1e3:9.1f} ms "
        f"({regrid['delta_builds']} delta + "
        f"{regrid['cold_builds_announced']} cold builds)",
        f"  unannounced rebuild total {regrid['rebuild_s_unannounced'] * 1e3:9.1f} ms "
        f"({regrid['cold_builds_unannounced']} cold builds)",
        f"  speedup {regrid['speedup']:.2f}x, fields bit-identical",
        f"persistent cache (level {cache['levels']}, {cache['steps']} steps):",
        f"  first run: {cache['cold_builds_first_run']} cold builds at "
        f"{cache['cold_build_ms']:.1f} ms each, {cache['entries']} entries stored",
        f"  warm rerun: {cache['cache_hits_rerun']} cache hits at "
        f"{cache['cache_hit_ms']:.1f} ms each, "
        f"{cache['cold_builds_rerun']} cold builds (must be 0), "
        "fields bit-identical",
    ]

    gate_applies = not args.smoke
    gate_ok = True
    if gate_applies:
        gate_ok = regrid["speedup"] >= REBUILD_GATE
        lines.append(
            f"gate: announced-regrid rebuild speedup {regrid['speedup']:.2f}x "
            f"(require >= {REBUILD_GATE}x) {'PASS' if gate_ok else 'FAIL'}"
        )
    else:
        lines.append(
            "gate: speedup gate skipped (smoke mode); zero-cold-builds and "
            "bit-identity still enforced"
        )

    text = "\n".join(lines)
    print(text)
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / "plancache.txt").write_text(text + "\n")
    payload = {
        "benchmark": "plancache",
        "smoke": args.smoke,
        "rebuild_gate": REBUILD_GATE,
        "gate_applies": gate_applies,
        "gate_ok": gate_ok,
        "regrid": regrid,
        "cache": cache,
    }
    (REPO_ROOT / "BENCH_plancache.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if not gate_ok:
        print(
            f"FAIL: rebuild speedup below {REBUILD_GATE}x", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
